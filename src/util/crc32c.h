// CRC32C (Castagnoli) checksum for the durable log and checkpoint formats.
// Software table implementation — no SSE4.2 dependency — fast enough for
// the log-append path (the fsync dominates by orders of magnitude).

#ifndef MMDB_UTIL_CRC32C_H_
#define MMDB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace mmdb {
namespace crc32c {

/// Extends `crc` (a previous Value() result, or 0 for a fresh stream) with
/// `n` bytes at `data`.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// Checksum of one contiguous buffer.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// A checksum stored next to the data it covers can be corrupted into a
/// value that accidentally verifies against the corrupted data (e.g. a run
/// of zeros checksums to zero).  Masking (as in LevelDB) makes the stored
/// form differ from any checksum of bytes that include the stored form.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace mmdb

#endif  // MMDB_UTIL_CRC32C_H_
