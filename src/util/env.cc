#include "src/util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mmdb {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// ---- POSIX --------------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(ErrnoMessage("write", path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(ErrnoMessage("fsync", path_));
    }
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal(ErrnoMessage("close", path_));
    }
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path, bool truncate,
                         std::unique_ptr<WritableFile>* out) override {
    int flags = O_CREAT | O_WRONLY | O_CLOEXEC;
    flags |= truncate ? O_TRUNC : O_APPEND;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Status::Internal(ErrnoMessage("open", path));
    *out = std::make_unique<PosixWritableFile>(fd, path);
    return Status::Ok();
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::NotFound(ErrnoMessage("open", path));
    out->clear();
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::Internal(ErrnoMessage("read", path));
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::Ok();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal(ErrnoMessage("rename", from));
    }
    // The rename is only crash-durable once the directory entry is synced.
    return SyncDir(ParentDir(to));
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::Internal(ErrnoMessage("unlink", path));
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Status::NotFound(ErrnoMessage("opendir", dir));
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(name);
    }
    ::closedir(d);
    return Status::Ok();
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(ErrnoMessage("mkdir", dir));
    }
    return Status::Ok();
  }

  Status FileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::NotFound(ErrnoMessage("stat", path));
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::Ok();
  }

 private:
  static Status SyncDir(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::Internal(ErrnoMessage("open dir", dir));
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::Internal(ErrnoMessage("fsync dir", dir));
    return Status::Ok();
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv env;
  return &env;
}

// ---- In-memory ----------------------------------------------------------

class InMemWritableFile : public WritableFile {
 public:
  explicit InMemWritableFile(std::shared_ptr<InMemEnv::FileState> state)
      : state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->data.append(data);
    return Status::Ok();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->synced = state_->data.size();
    return Status::Ok();
  }

  Status Close() override { return Status::Ok(); }

 private:
  std::shared_ptr<InMemEnv::FileState> state_;
};

Status InMemEnv::NewWritableFile(const std::string& path, bool truncate,
                                 std::unique_ptr<WritableFile>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& state = files_[path];
  if (state == nullptr) state = std::make_shared<FileState>();
  if (truncate) {
    std::lock_guard<std::mutex> file_lock(state->mu);
    state->data.clear();
    state->synced = 0;
  }
  *out = std::make_unique<InMemWritableFile>(state);
  return Status::Ok();
}

Status InMemEnv::ReadFile(const std::string& path, std::string* out) {
  std::shared_ptr<FileState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no file " + path);
    state = it->second;
  }
  std::lock_guard<std::mutex> file_lock(state->mu);
  *out = state->data;
  return Status::Ok();
}

Status InMemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no file " + from);
  files_[to] = it->second;
  files_.erase(it);
  return Status::Ok();
}

Status InMemEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound("no file " + path);
  return Status::Ok();
}

bool InMemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) != 0;
}

Status InMemEnv::ListDir(const std::string& dir,
                         std::vector<std::string>* names) {
  names->clear();
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, state] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') != std::string::npos) continue;  // nested
    names->push_back(rest);
  }
  return Status::Ok();
}

Status InMemEnv::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_[dir] = true;
  return Status::Ok();
}

Status InMemEnv::FileSize(const std::string& path, uint64_t* size) {
  std::shared_ptr<FileState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no file " + path);
    state = it->second;
  }
  std::lock_guard<std::mutex> file_lock(state->mu);
  *size = state->data.size();
  return Status::Ok();
}

void InMemEnv::CrashAndLoseUnsynced() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    std::shared_ptr<FileState>& state = it->second;
    std::unique_lock<std::mutex> file_lock(state->mu);
    if (state->synced == 0) {
      file_lock.unlock();
      it = files_.erase(it);
      continue;
    }
    state->data.resize(state->synced);
    ++it;
  }
}

// ---- Fault injection ----------------------------------------------------

class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env,
                             std::unique_ptr<WritableFile> target)
      : env_(env), target_(std::move(target)) {}

  Status Append(std::string_view data) override {
    if (env_->Dead()) return Status::Internal("injected fault: disk dead");
    if (env_->ChargeIo()) return target_->Append(data);
    // The faulted append: what (if anything) reaches the target depends on
    // the mode — the caller sees an error either way.
    switch (env_->mode_) {
      case FaultInjectionEnv::FaultMode::kFail:
        break;
      case FaultInjectionEnv::FaultMode::kShortWrite:
        target_->Append(data.substr(0, data.size() / 2)).ok();
        break;
      case FaultInjectionEnv::FaultMode::kTornWrite: {
        std::string torn(data.substr(0, data.size() / 2 + 1));
        if (!torn.empty()) torn.back() = static_cast<char>(~torn.back());
        target_->Append(torn).ok();
        break;
      }
    }
    return Status::Internal("injected fault: append failed");
  }

  Status Sync() override {
    if (env_->Dead()) return Status::Internal("injected fault: disk dead");
    if (!env_->ChargeIo()) return Status::Internal("injected fault: fsync failed");
    return target_->Sync();
  }

  Status Close() override { return target_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> target_;
};

void FaultInjectionEnv::ArmFault(uint64_t n, FaultMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  ios_ = 0;
  fail_at_ = n;
  mode_ = mode;
  fired_ = false;
}

void FaultInjectionEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ios_ = 0;
  fail_at_ = 0;
  fired_ = false;
}

uint64_t FaultInjectionEnv::io_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ios_;
}

bool FaultInjectionEnv::fault_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

bool FaultInjectionEnv::ChargeIo() {
  std::lock_guard<std::mutex> lock(mu_);
  ++ios_;
  if (fail_at_ != 0 && ios_ == fail_at_) {
    fired_ = true;
    return false;
  }
  return !fired_;
}

bool FaultInjectionEnv::Dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status FaultInjectionEnv::NewWritableFile(const std::string& path,
                                          bool truncate,
                                          std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> inner;
  Status s = target_->NewWritableFile(path, truncate, &inner);
  if (!s.ok()) return s;
  *out = std::make_unique<FaultInjectionWritableFile>(this, std::move(inner));
  return Status::Ok();
}

Status FaultInjectionEnv::ReadFile(const std::string& path, std::string* out) {
  return target_->ReadFile(path, out);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (Dead()) return Status::Internal("injected fault: disk dead");
  if (!ChargeIo()) return Status::Internal("injected fault: rename failed");
  return target_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (Dead()) return Status::Internal("injected fault: disk dead");
  return target_->RemoveFile(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return target_->FileExists(path);
}

Status FaultInjectionEnv::ListDir(const std::string& dir,
                                  std::vector<std::string>* names) {
  return target_->ListDir(dir, names);
}

Status FaultInjectionEnv::CreateDir(const std::string& dir) {
  return target_->CreateDir(dir);
}

Status FaultInjectionEnv::FileSize(const std::string& path, uint64_t* size) {
  return target_->FileSize(path, size);
}

}  // namespace mmdb
