// Env: the filesystem seam the durability chain writes through (the
// CalicoDB pattern).  Production uses PosixEnv; tests swap in InMemEnv for
// hermetic speed and wrap either in FaultInjectionEnv to fail, short-write,
// or tear the Nth I/O and then drop un-synced data — so crash safety is
// proven by systematic fault sweeps, not asserted.
//
// The durable-write contract the WAL and checkpointer rely on:
//   * Append is buffered; only Sync() makes appended bytes survive a crash.
//   * RenameFile is atomic and, once it returns OK, durable (PosixEnv
//     fsyncs the parent directory) — the checkpoint temp+rename protocol
//     depends on this.
//   * A crash may truncate any file to its last-synced prefix; it never
//     reorders synced bytes.

#ifndef MMDB_UTIL_ENV_H_
#define MMDB_UTIL_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace mmdb {

/// Sequential append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Makes every appended byte crash-durable.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending; `truncate` discards existing content.
  virtual Status NewWritableFile(const std::string& path, bool truncate,
                                 std::unique_ptr<WritableFile>* out) = 0;
  /// Reads the whole file into `*out`.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;
  /// Atomic durable rename (replaces `to` if it exists).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Non-recursive listing of plain file names in `dir`.
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;
  /// Creates one directory level; OK if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;
  virtual Status FileSize(const std::string& path, uint64_t* size) = 0;

  /// Process-wide POSIX-backed environment.
  static Env* Posix();
};

/// Hermetic in-memory filesystem.  Tracks the synced prefix of every file
/// so CrashAndLoseUnsynced() can simulate a power failure: each file is
/// truncated to its last-synced length (files never synced disappear).
class InMemEnv : public Env {
 public:
  Status NewWritableFile(const std::string& path, bool truncate,
                         std::unique_ptr<WritableFile>* out) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status CreateDir(const std::string& dir) override;
  Status FileSize(const std::string& path, uint64_t* size) override;

  /// Simulated power loss: every file reverts to its last-synced prefix.
  void CrashAndLoseUnsynced();

 private:
  friend class InMemWritableFile;
  struct FileState {
    std::mutex mu;
    std::string data;
    size_t synced = 0;
  };

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
  std::map<std::string, bool> dirs_;
};

/// Wraps another Env and injects a write fault at the Nth I/O (Append,
/// Sync, or Rename each count as one).  After the fault fires, every
/// further write fails — the disk is dead — until Reset().  Reads pass
/// through untouched so recovery can be exercised against the survivors.
class FaultInjectionEnv : public Env {
 public:
  enum class FaultMode {
    kFail,        ///< the I/O errors without side effects
    kShortWrite,  ///< an Append persists only a prefix, then errors
    kTornWrite,   ///< an Append persists a corrupted prefix, then errors
  };

  explicit FaultInjectionEnv(Env* target) : target_(target) {}

  /// Arms the fault: the `n`th write I/O from now (1-based) fails with
  /// `mode`.  Pass 0 to disarm.
  void ArmFault(uint64_t n, FaultMode mode = FaultMode::kFail);
  /// Clears both the armed fault and the dead-disk latch.
  void Reset();
  /// Write I/Os observed since construction or the last Reset().
  uint64_t io_count() const;
  bool fault_fired() const;

  Status NewWritableFile(const std::string& path, bool truncate,
                         std::unique_ptr<WritableFile>* out) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status CreateDir(const std::string& dir) override;
  Status FileSize(const std::string& path, uint64_t* size) override;

 private:
  friend class FaultInjectionWritableFile;

  /// Charges one write I/O; returns false (and latches the dead-disk
  /// state) if this is the faulted one.
  bool ChargeIo();
  bool Dead() const;

  Env* target_;
  mutable std::mutex mu_;
  uint64_t ios_ = 0;
  uint64_t fail_at_ = 0;  // 0 = disarmed
  FaultMode mode_ = FaultMode::kFail;
  bool fired_ = false;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_ENV_H_
