// Hash primitives shared by the hash-based index structures and the
// projection/duplicate-elimination code.

#ifndef MMDB_UTIL_HASH_H_
#define MMDB_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mmdb {

/// 64-bit finalizer (Murmur3 fmix64).  Good avalanche for integer keys.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over arbitrary bytes, mixed through the 64-bit finalizer.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return HashMix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashDouble(double d) {
  // Normalize -0.0 to +0.0 so equal values hash equally.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return HashMix64(bits);
}

}  // namespace mmdb

#endif  // MMDB_UTIL_HASH_H_
