#include "src/util/log.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>

namespace mmdb {
namespace logging {
namespace {

using Clock = std::chrono::steady_clock;

Level ParseLevel(const char* s) {
  if (s == nullptr || *s == '\0') return Level::kInfo;
  if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "DEBUG") == 0) {
    return Level::kDebug;
  }
  if (std::strcmp(s, "info") == 0 || std::strcmp(s, "INFO") == 0) {
    return Level::kInfo;
  }
  if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "WARN") == 0) {
    return Level::kWarn;
  }
  if (std::strcmp(s, "error") == 0 || std::strcmp(s, "ERROR") == 0) {
    return Level::kError;
  }
  if (std::strcmp(s, "off") == 0 || std::strcmp(s, "OFF") == 0) {
    return Level::kOff;
  }
  return Level::kInfo;
}

Level InitialLevel() { return ParseLevel(std::getenv("MMDB_LOG")); }

std::atomic<uint8_t> g_min_level{
    static_cast<uint8_t>(255)};  // 255 = not yet initialized

std::atomic<uint64_t> g_suppressed_total{0};

/// One token bucket per (level, subsys) stream.
struct Bucket {
  double tokens = kBurst;
  Clock::time_point last = Clock::now();
  uint64_t suppressed = 0;  ///< since the last emitted line
};

struct SinkState {
  std::mutex mu;
  Sink sink;  ///< empty = stderr default
  std::map<std::pair<uint8_t, std::string>, Bucket> buckets;
};

SinkState& GlobalSink() {
  static SinkState* s = new SinkState();
  return *s;
}

/// "2026-08-08T12:00:00.123Z" from the wall clock.
void AppendTimestamp(std::string* out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  *out += buf;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level MinLevel() {
  uint8_t v = g_min_level.load(std::memory_order_relaxed);
  if (v == 255) {
    const Level parsed = InitialLevel();
    uint8_t expected = 255;
    g_min_level.compare_exchange_strong(expected, static_cast<uint8_t>(parsed),
                                        std::memory_order_relaxed);
    v = g_min_level.load(std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
}

bool Enabled(Level level) {
  return level != Level::kOff && level >= MinLevel();
}

void SetSinkForTest(Sink sink) {
  SinkState& s = GlobalSink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink = std::move(sink);
}

uint64_t SuppressedTotal() {
  return g_suppressed_total.load(std::memory_order_relaxed);
}

void Log(Level level, std::string_view subsys, std::string_view message) {
  if (!Enabled(level)) return;

  SinkState& s = GlobalSink();
  std::string line;
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    Bucket& b = s.buckets[{static_cast<uint8_t>(level), std::string(subsys)}];
    const auto now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - b.last).count();
    b.last = now;
    b.tokens = std::min(kBurst, b.tokens + elapsed * kPerSecond);
    if (b.tokens < 1.0) {
      ++b.suppressed;
      g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    b.tokens -= 1.0;

    line.reserve(64 + message.size());
    AppendTimestamp(&line);
    line += ' ';
    line += LevelName(level);
    line += ' ';
    line.append(subsys.data(), subsys.size());
    line += ": ";
    if (b.suppressed > 0) {
      line += "[suppressed " + std::to_string(b.suppressed) + "] ";
      b.suppressed = 0;
    }
    line.append(message.data(), message.size());
    sink = s.sink;  // copy under the lock; call outside it
  }
  if (sink) {
    sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace logging
}  // namespace mmdb
