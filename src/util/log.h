// Leveled, rate-limited process logging.  The engine had no logging
// facility before the observability PR — spans and metrics are pull-based
// (scraped or dumped), but a slow query or a stalled worker needs to *push*
// a line somewhere a human or a log shipper will see it, without ever
// letting a pathological workload turn the log into the bottleneck.
//
// Design:
//   * four levels (Debug < Info < Warn < Error) behind one relaxed atomic
//     minimum; a suppressed call is a load and a compare;
//   * per-(level, subsystem) token buckets: each stream may burst
//     `kBurst` lines and then refills at `kPerSecond` lines/second.
//     Suppressed lines are counted and the count is prepended to the next
//     line that does get through ("[suppressed 42] ...") so volume is
//     never silently lost;
//   * one pluggable sink (default: one fprintf(stderr) per line, so lines
//     from concurrent threads never interleave mid-line); tests install a
//     capturing sink;
//   * the minimum level comes from the MMDB_LOG environment variable on
//     first use (debug|info|warn|error|off), default Info.
//
// Lines look like:
//   2026-08-08T12:00:00.123Z WARN  slowlog: trace=0x1d0a... total_us=12345

#ifndef MMDB_UTIL_LOG_H_
#define MMDB_UTIL_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace mmdb {
namespace logging {

enum class Level : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< min-level only; never a message level
};

const char* LevelName(Level level);

/// Current minimum level (first call parses MMDB_LOG).
Level MinLevel();
void SetMinLevel(Level level);

/// True when a message at `level` would be emitted (cheap pre-check so
/// callers can skip building expensive strings).
bool Enabled(Level level);

/// Emits one line through the rate limiter.  `subsys` must be a stable
/// short tag ("slowlog", "watchdog", "net"); it keys the token bucket.
void Log(Level level, std::string_view subsys, std::string_view message);

inline void Debug(std::string_view subsys, std::string_view message) {
  Log(Level::kDebug, subsys, message);
}
inline void Info(std::string_view subsys, std::string_view message) {
  Log(Level::kInfo, subsys, message);
}
inline void Warn(std::string_view subsys, std::string_view message) {
  Log(Level::kWarn, subsys, message);
}
inline void Error(std::string_view subsys, std::string_view message) {
  Log(Level::kError, subsys, message);
}

/// Rate-limit policy: per (level, subsys) stream, allow a burst of kBurst
/// lines, refilling at kPerSecond lines per second.
inline constexpr double kBurst = 10.0;
inline constexpr double kPerSecond = 5.0;

/// Replaces the output sink (nullptr restores the stderr default).  The
/// sink receives fully formatted lines without a trailing newline.  Used
/// by tests to capture output; install before concurrent logging starts.
using Sink = std::function<void(Level, const std::string& line)>;
void SetSinkForTest(Sink sink);

/// Total lines suppressed by the rate limiter since process start.
uint64_t SuppressedTotal();

}  // namespace logging
}  // namespace mmdb

#endif  // MMDB_UTIL_LOG_H_
