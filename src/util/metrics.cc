#include "src/util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace mmdb {
namespace {

/// Bucket index for a microsecond value: 0 for <1µs, else 1 + floor(log2),
/// clamped to the open-ended last bucket.
size_t BucketOf(uint64_t micros) {
  if (micros == 0) return 0;
  const size_t idx = static_cast<size_t>(std::bit_width(micros));
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

/// Splits a metric name into base and label set: `a{b="c"}` -> (`a`,
/// `b="c"`); no braces -> (name, "").
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  const size_t close = name.rfind('}');
  *labels = name.substr(brace + 1,
                        close == std::string::npos ? std::string::npos
                                                   : close - brace - 1);
}

/// `base` + optional extra label merged with the series' own labels.
std::string SeriesName(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return base;
  std::string out = base + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

uint64_t LatencyHistogram::BucketUpperMicros(size_t i) {
  return uint64_t{1} << i;
}

void LatencyHistogram::Record(double micros) {
  const uint64_t us =
      micros <= 0 ? 0 : static_cast<uint64_t>(std::llround(micros));
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev = max_micros_.load(std::memory_order_relaxed);
  while (us > prev &&
         !max_micros_.compare_exchange_weak(prev, us,
                                            std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_micros = total_micros_.load(std::memory_order_relaxed);
  s.max_micros = max_micros_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::MeanMicros() const {
  return count == 0 ? 0.0
                    : static_cast<double>(total_micros) /
                          static_cast<double>(count);
}

uint64_t LatencyHistogram::Snapshot::PercentileMicros(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(std::ceil(p * count));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The open last bucket has no upper bound; report the observed max.
      return i + 1 == kBuckets ? max_micros : BucketUpperMicros(i);
    }
  }
  return max_micros;
}

std::string LatencyHistogram::Snapshot::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << MeanMicros() << "us"
     << " p50<=" << PercentileMicros(0.50) << "us"
     << " p99<=" << PercentileMicros(0.99) << "us"
     << " max=" << max_micros << "us";
  return os.str();
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(const std::string& name,
                                                     Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Entry* e = GetOrCreate(name, Kind::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Entry* e = GetOrCreate(name, Kind::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Entry* e = GetOrCreate(name, Kind::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  // entries_ is name-sorted, so every series of a family (same base,
  // different labels) is contiguous; emit one # TYPE line per family.
  std::string last_base;
  for (const auto& [name, entry] : entries_) {
    std::string base, labels;
    SplitName(name, &base, &labels);
    if (base != last_base) {
      const char* type = entry.kind == Kind::kCounter    ? "counter"
                         : entry.kind == Kind::kGauge    ? "gauge"
                                                         : "histogram";
      os << "# TYPE " << base << " " << type << "\n";
      last_base = base;
    }
    switch (entry.kind) {
      case Kind::kCounter:
        os << SeriesName(base, labels) << " " << entry.counter->Value()
           << "\n";
        break;
      case Kind::kGauge:
        os << SeriesName(base, labels) << " " << entry.gauge->Value() << "\n";
        break;
      case Kind::kHistogram: {
        const LatencyHistogram::Snapshot s = entry.histogram->Snap();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
          cumulative += s.buckets[i];
          std::string le =
              i + 1 == LatencyHistogram::kBuckets
                  ? std::string("+Inf")
                  : std::to_string(LatencyHistogram::BucketUpperMicros(i));
          os << SeriesName(base + "_bucket", labels, "le=\"" + le + "\"")
             << " " << cumulative << "\n";
        }
        os << SeriesName(base + "_sum", labels) << " " << s.total_micros
           << "\n";
        os << SeriesName(base + "_count", labels) << " " << s.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace mmdb
