// Metrics registry: named counters, gauges, and latency histograms with a
// Prometheus-style text rendering.  This is the service-level half of the
// paper's Section 3.1 instrumentation ("recording and examining the number
// of comparisons ... to ensure that the algorithms were doing what they
// were supposed to"): where OpCounters count algorithmic work per thread,
// the registry aggregates process-visible series — operations completed,
// queue depth, lock-wait time — that a production deployment would scrape.
//
// Naming follows the Prometheus convention: `mmdb_<subsystem>_<what>` with
// optional labels in braces (`mmdb_lock_wait_micros{mode="shared",
// scope="partition"}`), counters suffixed `_total`.  A full name (base +
// label set) identifies one metric object; GetCounter/GetGauge/GetHistogram
// are get-or-create, so independent subsystems can share series by name.
//
// Thread-safety: metric objects are lock-free atomics safe to bump from
// any thread; registration and rendering take the registry mutex.  Pointers
// returned by Get* stay valid for the registry's lifetime (entries are
// never removed).

#ifndef MMDB_UTIL_METRICS_H_
#define MMDB_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace mmdb {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, live sessions).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Lock-free latency histogram: power-of-two microsecond buckets
/// (bucket i counts samples in [2^(i-1), 2^i) µs; bucket 0 is < 1 µs,
/// the last bucket is open-ended).  Record() is a couple of relaxed
/// atomic increments, cheap enough to leave on in production.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 22;  // open bucket starts at ~2.1 s

  /// Plain-value snapshot of one histogram.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t total_micros = 0;
    uint64_t max_micros = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double MeanMicros() const;
    /// Upper-bound estimate of the p-quantile (p in [0,1]) in µs.
    uint64_t PercentileMicros(double p) const;
    /// One-line rendering: count/mean/p50/p99/max.
    std::string ToString() const;
  };

  /// Inclusive upper bound (µs) of bucket i; the last bucket has none.
  static uint64_t BucketUpperMicros(size_t i);

  void Record(double micros);
  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// Registry of named metrics.  One per Database; subsystems (lock manager,
/// query service, shell) get-or-create their series against it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  `name` may carry a label set: `base{k="v",k2="v2"}`.
  /// Requesting an existing name with a different metric type returns
  /// nullptr (the name is taken).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Prometheus text exposition: `# TYPE` per family, `name value` per
  /// series, histograms as cumulative `_bucket{le=...}` + `_sum`/`_count`.
  std::string RenderPrometheus() const;

  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_METRICS_H_
