#include "src/util/rng.h"

#include <cmath>

namespace mmdb {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* s) {
  uint64_t z = (*s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextTruncatedNormal(double stddev) {
  // Rejection-sample |N(0, stddev)| until the value falls in (0, 1].
  for (;;) {
    double x = std::fabs(NextGaussian() * stddev);
    if (x > 0.0 && x <= 1.0) return x;
  }
}

}  // namespace mmdb
