// Deterministic pseudo-random number generation for workload construction.
//
// The paper's relation generator (Section 3.3.1) draws duplicate counts from
// a *truncated normal distribution* with standard deviations 0.1 (skewed),
// 0.4 (moderately skewed), and 0.8 (near-uniform).  Rng reproduces that
// sampling procedure; everything is seeded so experiments are repeatable.

#ifndef MMDB_UTIL_RNG_H_
#define MMDB_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mmdb {

/// xoshiro256** generator: fast, high quality, fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal deviate (Box-Muller, cached pair).
  double NextGaussian();

  /// Sample from a normal with given stddev, truncated to (0, 1].
  /// Mirrors the paper's "random sampling procedure based on a truncated
  /// normal distribution with a variable standard deviation"; the mean sits
  /// at 0 so small stddev => heavily skewed mass near zero.
  double NextTruncatedNormal(double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_RNG_H_
