// Hybrid quicksort, as used by the paper's Sort Merge join and Sort Scan
// duplicate elimination: "quicksort with an insertion sort for subarrays of
// ten elements or less" (the cutoff of 10 was itself tuned experimentally —
// footnote 6).  The cutoff is a parameter so the ablation bench can re-run
// the paper's tuning experiment.

#ifndef MMDB_UTIL_SORT_H_
#define MMDB_UTIL_SORT_H_

#include <cstddef>
#include <utility>

#include "src/util/counters.h"

namespace mmdb {

inline constexpr int kDefaultInsertionSortCutoff = 10;

namespace detail {

template <typename T, typename Less>
void InsertionSort(T* a, size_t n, const Less& less) {
  for (size_t i = 1; i < n; ++i) {
    T v = a[i];
    size_t j = i;
    while (j > 0 && less(v, a[j - 1])) {
      a[j] = a[j - 1];
      counters::BumpDataMoves();
      --j;
    }
    a[j] = v;
  }
}

template <typename T, typename Less>
void QuickSort(T* a, size_t n, const Less& less, int cutoff) {
  while (n > static_cast<size_t>(cutoff) && n > 3) {
    // Median-of-three pivot selection (Sedgewick): sorts the three
    // candidates, leaving sentinels at both ends, then parks the pivot at
    // a[n-2] so the partition always makes progress.
    const size_t mid = n / 2;
    if (less(a[mid], a[0])) std::swap(a[0], a[mid]);
    if (less(a[n - 1], a[0])) std::swap(a[0], a[n - 1]);
    if (less(a[n - 1], a[mid])) std::swap(a[mid], a[n - 1]);
    std::swap(a[mid], a[n - 2]);
    const T pivot = a[n - 2];

    size_t i = 0, j = n - 2;
    for (;;) {
      while (less(a[++i], pivot)) {
      }
      while (less(pivot, a[--j])) {
      }
      if (i >= j) break;
      std::swap(a[i], a[j]);
      counters::BumpDataMoves(2);
    }
    std::swap(a[i], a[n - 2]);  // pivot into its final position i
    counters::BumpDataMoves(2);

    // Recurse on the smaller side, loop on the larger (O(log n) stack).
    const size_t left_n = i;
    const size_t right_n = n - i - 1;
    if (left_n < right_n) {
      QuickSort(a, left_n, less, cutoff);
      a += i + 1;
      n = right_n;
    } else {
      QuickSort(a + i + 1, right_n, less, cutoff);
      n = left_n;
    }
  }
  InsertionSort(a, n, less);
}

}  // namespace detail

/// Sorts a[0..n) by `less`, quicksort switching to insertion sort below
/// `cutoff` elements.
template <typename T, typename Less>
void HybridSort(T* a, size_t n, const Less& less,
                int cutoff = kDefaultInsertionSortCutoff) {
  if (n > 1) detail::QuickSort(a, n, less, cutoff < 1 ? 1 : cutoff);
}

}  // namespace mmdb

#endif  // MMDB_UTIL_SORT_H_
