#include "src/util/status.h"

namespace mmdb {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kReadOnly: return "READ_ONLY";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mmdb
