// Lightweight Status type for fallible operations on the public API surface.
// Internal hot paths (index probes, comparisons) use plain returns instead;
// Status is reserved for catalog / storage / transaction operations where the
// error needs to carry a message.

#ifndef MMDB_UTIL_STATUS_H_
#define MMDB_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace mmdb {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,
  kAborted,
  kInternal,
  /// Durable state failed validation (CRC mismatch, broken segment chain,
  /// torn frame where none may legally be).  Recovery and replication
  /// surface this instead of silently replaying a partial prefix.
  kCorruption,
  /// The node is a read replica: writes are rejected, typed, until PROMOTE.
  kReadOnly,
};

/// Result of a fallible operation: a code plus an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Corruption(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
  static Status ReadOnly(std::string m) { return {StatusCode::kReadOnly, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_STATUS_H_
