#include "src/util/timer.h"

// Timer is header-only; this translation unit exists so the util library has
// a stable archive member for it and so future non-inline helpers have a home.
