// Wall-clock timing helper.  The paper used a getrusage-like facility on the
// VAX; we use the monotonic steady clock, which plays the same role for the
// self-reported timings printed by the benchmark harnesses.

#ifndef MMDB_UTIL_TIMER_H_
#define MMDB_UTIL_TIMER_H_

#include <chrono>

namespace mmdb {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// When the stopwatch last started (for cross-thread trace spans).
  std::chrono::steady_clock::time_point start_time() const { return start_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mmdb

#endif  // MMDB_UTIL_TIMER_H_
