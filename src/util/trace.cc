#include "src/util/trace.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

namespace mmdb {
namespace trace {
namespace {

/// Fixed-capacity ring of completed spans.  One mutex guards writes and
/// snapshots; spans complete at query/operator granularity (not per tuple),
/// so contention on it is negligible next to the work being traced.
struct Ring {
  std::mutex mu;
  std::vector<SpanRecord> spans;  // size == capacity once full
  size_t capacity = 0;
  size_t next = 0;        // ring write position
  uint64_t total = 0;     // spans recorded since Enable
  Clock::time_point epoch{};  // ts origin for the JSON dump
};

Ring& GlobalRing() {
  static Ring* ring = new Ring();
  return *ring;
}

std::atomic<uint32_t> g_next_tid{1};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += ' ';
    } else {
      *out += c;
    }
  }
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

thread_local uint32_t tls_tid = 0;
thread_local uint32_t tls_depth = 0;
thread_local uint64_t tls_trace_id = 0;
thread_local uint64_t tls_lock_wait_ns = 0;
thread_local uint64_t tls_commit_wait_ns = 0;

uint32_t ThreadId() {
  if (tls_tid == 0) {
    tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_tid;
}

uint32_t EnterSpan() { return tls_depth++; }
void LeaveSpan() {
  if (tls_depth > 0) --tls_depth;
}

void PushSpan(const char* name, Clock::time_point start,
              Clock::time_point end, std::string args, uint32_t depth) {
  SpanRecord rec;
  rec.name = name;
  rec.args = std::move(args);
  rec.trace_id = tls_trace_id;
  rec.start = start;
  rec.dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  rec.tid = ThreadId();
  rec.depth = depth;

  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.capacity == 0) return;  // disabled and never enabled
  if (ring.spans.size() < ring.capacity) {
    ring.spans.push_back(std::move(rec));
  } else {
    ring.spans[ring.next] = std::move(rec);
  }
  ring.next = (ring.next + 1) % ring.capacity;
  ++ring.total;
}

}  // namespace detail

void Enable(size_t capacity) {
  Ring& ring = GlobalRing();
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    ring.spans.clear();
    ring.spans.reserve(capacity);
    ring.capacity = capacity == 0 ? 1 : capacity;
    ring.next = 0;
    ring.total = 0;
    ring.epoch = Clock::now();
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Clear() {
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.spans.clear();
  ring.next = 0;
  ring.total = 0;
}

std::vector<SpanRecord> Snapshot() {
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<SpanRecord> out;
  out.reserve(ring.spans.size());
  // Oldest first: when the ring has wrapped, `next` points at the oldest.
  const size_t n = ring.spans.size();
  const size_t first = n < ring.capacity ? 0 : ring.next;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring.spans[(first + i) % n]);
  }
  return out;
}

uint64_t TotalRecorded() {
  Ring& ring = GlobalRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.total;
}

std::string ToChromeJson() {
  Clock::time_point epoch;
  {
    Ring& ring = GlobalRing();
    std::lock_guard<std::mutex> lock(ring.mu);
    epoch = ring.epoch;
  }
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    const double ts =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(s.start -
                                                                 epoch)
                .count()) /
        1e3;
    std::string event = "{\"name\":\"";
    AppendEscaped(&event, s.name);
    event += "\",\"cat\":\"mmdb\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
             std::to_string(s.tid);
    {
      std::ostringstream num;
      num << ",\"ts\":" << ts << ",\"dur\":" << s.DurMicros();
      event += num.str();
    }
    // The wire-visible trace id goes into args so a chrome://tracing or
    // Perfetto query can pull every span of one request by id.
    std::string args = s.args;
    if (s.trace_id != 0) {
      if (!args.empty()) args += ",";
      char idbuf[32];
      std::snprintf(idbuf, sizeof(idbuf), "\"trace_id\":\"0x%llx\"",
                    static_cast<unsigned long long>(s.trace_id));
      args += idbuf;
    }
    if (!args.empty()) {
      event += ",\"args\":{" + args + "}";
    }
    event += "}";
    out += event;
  }
  out += "]}";
  return out;
}

bool WriteChromeJson(const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << ToChromeJson();
  out.close();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace trace
}  // namespace mmdb
