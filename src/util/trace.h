// Lightweight span tracing for the query lifecycle.  The paper validated
// its algorithms by *counting* work (Section 3.1); tracing adds the time
// dimension: where inside one query the microseconds went — queue wait,
// lock wait, planning, each operator — attributed to the exact query that
// paid them.
//
// Design:
//   * a process-global on/off flag (relaxed atomic).  When tracing is off,
//     a Span construction is one relaxed load and a branch — cheap enough
//     to leave the instrumentation compiled in everywhere;
//   * completed spans land in a global fixed-capacity ring buffer (oldest
//     overwritten), so tracing never allocates without bound;
//   * span names are string literals; optional args are a preformatted
//     JSON-fragment string ("\"mode\":\"S\"") built only when enabled;
//   * nesting is tracked per thread (a thread-local depth counter — the
//     span *stack*); cross-thread intervals (queue wait measured from
//     Submit on the client thread to dequeue on the worker) use
//     RecordSpan with explicit start/end timestamps;
//   * ToChromeJson() renders the buffer in the chrome://tracing /
//     Perfetto "traceEvents" format (ph:"X" complete events, ts/dur µs).

#ifndef MMDB_UTIL_TRACE_H_
#define MMDB_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mmdb {
namespace trace {

using Clock = std::chrono::steady_clock;

/// One completed span, as stored in the ring buffer.
struct SpanRecord {
  const char* name = "";        ///< static string (span site)
  std::string args;             ///< JSON fragment, e.g. "\"mode\":\"S\""
  Clock::time_point start{};
  uint64_t dur_ns = 0;
  uint64_t trace_id = 0;        ///< wire-visible request id (0 = no request)
  uint32_t tid = 0;             ///< small per-thread id (not the OS tid)
  uint32_t depth = 0;           ///< nesting depth on that thread

  double DurMicros() const { return static_cast<double>(dur_ns) / 1e3; }
};

namespace detail {
extern std::atomic<bool> g_enabled;
void PushSpan(const char* name, Clock::time_point start,
              Clock::time_point end, std::string args, uint32_t depth);
uint32_t ThreadId();
uint32_t EnterSpan();  // returns depth before increment
void LeaveSpan();
extern thread_local uint64_t tls_trace_id;
extern thread_local uint64_t tls_lock_wait_ns;
extern thread_local uint64_t tls_commit_wait_ns;
}  // namespace detail

// ---- Per-request context ----------------------------------------------------
//
// The worker executing a request stamps its thread with the request's
// wire-visible trace id; every span the thread records while the request
// runs carries that id, and the lock manager / commit path accumulate
// their wait time here so the service can hand the client a
// queue/lock/exec/commit breakdown.  Always on (plain thread-local writes
// — no atomics, no branches on the tracing flag): the accumulators are how
// the flight recorder attributes time even when span tracing is disabled.

/// Enters a request scope on this thread: sets the trace id and zeroes the
/// wait accumulators.  Call with 0 to leave the scope.
inline void BeginRequest(uint64_t trace_id) {
  detail::tls_trace_id = trace_id;
  detail::tls_lock_wait_ns = 0;
  detail::tls_commit_wait_ns = 0;
}

/// Trace id of the request this thread is executing (0 outside a request).
inline uint64_t CurrentTraceId() { return detail::tls_trace_id; }

/// Lock-wait time charged to the current request (lock manager hook).
inline void AddLockWaitNanos(uint64_t ns) { detail::tls_lock_wait_ns += ns; }
inline uint64_t LockWaitNanos() { return detail::tls_lock_wait_ns; }

/// Durability-wait time charged to the current request (commit fsync ack).
inline void AddCommitWaitNanos(uint64_t ns) {
  detail::tls_commit_wait_ns += ns;
}
inline uint64_t CommitWaitNanos() { return detail::tls_commit_wait_ns; }

/// Whether spans are currently being recorded.  One relaxed load.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Starts recording into a fresh ring buffer of `capacity` spans.
void Enable(size_t capacity = 1 << 16);

/// Stops recording.  The buffer keeps its contents for Snapshot/ToChromeJson.
void Disable();

/// Discards all recorded spans (recording state unchanged).
void Clear();

/// Copies out the recorded spans, oldest first.
std::vector<SpanRecord> Snapshot();

/// Total spans recorded since Enable (including any the ring dropped).
uint64_t TotalRecorded();

/// chrome://tracing "traceEvents" JSON for the current buffer contents.
std::string ToChromeJson();

/// Writes ToChromeJson() to `path`.  Returns false (and sets *error) on
/// I/O failure.
bool WriteChromeJson(const std::string& path, std::string* error = nullptr);

/// Records an explicit interval (cross-thread spans like queue wait).
inline void RecordSpan(const char* name, Clock::time_point start,
                       Clock::time_point end, std::string args = {}) {
  if (!Enabled()) return;
  detail::PushSpan(name, start, end, std::move(args), 0);
}

/// RAII span: times the enclosing scope on the current thread.  Does
/// nothing (and costs one relaxed load) when tracing is disabled.
class Span {
 public:
  explicit Span(const char* name) : name_(name), active_(Enabled()) {
    if (active_) {
      depth_ = detail::EnterSpan();
      start_ = Clock::now();
    }
  }
  Span(const char* name, std::string args) : Span(name) {
    if (active_) args_ = std::move(args);
  }
  ~Span() {
    if (active_) {
      detail::PushSpan(name_, start_, Clock::now(), std::move(args_), depth_);
      detail::LeaveSpan();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Appends a JSON fragment ("\"k\":\"v\"") to the span's args.  No-op
  /// when inactive, so callers may build the string behind `if (active())`.
  void AddArgs(const std::string& fragment) {
    if (!active_ || fragment.empty()) return;
    if (!args_.empty()) args_ += ",";
    args_ += fragment;
  }

 private:
  const char* name_;
  bool active_;
  uint32_t depth_ = 0;
  Clock::time_point start_{};
  std::string args_;
};

}  // namespace trace
}  // namespace mmdb

#endif  // MMDB_UTIL_TRACE_H_
