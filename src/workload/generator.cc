#include "src/workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/index/array_index.h"
#include "src/index/key_ops.h"

namespace mmdb {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  assert(theta >= 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  // n == 1 degenerates eta to 0/0; Next() never uses it then.
  if (!std::isfinite(eta_)) eta_ = 1.0;
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  if (n_ == 1) return 0;
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

OpMixGenerator::OpMixGenerator(const MixSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed), zipf_(spec.key_domain, spec.zipf_theta) {
  if (spec_.key_domain == 0) spec_.key_domain = 1;
  if (spec_.templates == 0) spec_.templates = 1;
}

int64_t OpMixGenerator::KeyForRank(uint64_t rank) const {
  if (spec_.zipf_theta == 0.0) return static_cast<int64_t>(rank);  // uniform
  // FNV-1a on the rank's bytes scatters consecutive hot ranks across the
  // whole domain (occasional collisions merely merge two ranks' popularity).
  uint64_t h = 1469598103934665603ULL;
  for (int b = 0; b < 8; ++b) {
    h ^= (rank >> (8 * b)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return static_cast<int64_t>(h % spec_.key_domain);
}

MixedOp OpMixGenerator::Next() {
  MixedOp op;
  op.key = KeyForRank(zipf_.Next(&rng_));
  op.template_id = static_cast<uint32_t>(rng_.NextBounded(spec_.templates));
  const double roll = rng_.NextDouble() * 100.0;
  if (roll < spec_.read_pct) {
    if (rng_.NextDouble() * 100.0 < spec_.point_pct) {
      op.kind = MixedOp::Kind::kPointRead;
    } else {
      op.kind = MixedOp::Kind::kScanRead;
      op.key_hi = op.key + static_cast<int64_t>(spec_.scan_width);
    }
  } else {
    op.kind = rng_.NextDouble() * 100.0 < spec_.insert_pct
                  ? MixedOp::Kind::kInsert
                  : MixedOp::Kind::kUpdate;
  }
  return op;
}

WorkloadGen::WorkloadGen(uint64_t seed) : rng_(seed) {}

int32_t WorkloadGen::NextUniqueValue() {
  // Multiplication by an odd constant is a bijection on 2^32, so the stream
  // never repeats; the constant scrambles the order.
  return static_cast<int32_t>(unique_counter_++ * 2654435761u);
}

std::vector<int32_t> WorkloadGen::Apportion(size_t total, size_t uniques,
                                            double stddev) {
  assert(uniques >= 1 && uniques <= total);
  std::vector<int32_t> counts(uniques, 1);
  size_t extra = total - uniques;
  if (extra == 0) return counts;

  // The paper's sampling procedure: each extra occurrence draws a value
  // *position* from a truncated normal.  A small sigma concentrates the
  // draws on the first few values (the skewed curve of Graph 3); sigma 0.8
  // spreads them almost uniformly over [0, 1).
  for (size_t r = 0; r < extra; ++r) {
    double x = rng_.NextTruncatedNormal(stddev);
    auto idx = static_cast<size_t>(x * static_cast<double>(uniques));
    if (idx >= uniques) idx = uniques - 1;
    counts[idx] += 1;
  }
  return counts;
}

ColumnData WorkloadGen::Generate(const ColumnSpec& spec) {
  ColumnData out;
  const size_t n = spec.cardinality;
  if (n == 0) return out;
  size_t uniques = static_cast<size_t>(
      static_cast<double>(n) * (1.0 - spec.duplicate_pct / 100.0) + 0.5);
  uniques = std::clamp<size_t>(uniques, 1, n);

  out.uniques.reserve(uniques);
  for (size_t i = 0; i < uniques; ++i) out.uniques.push_back(NextUniqueValue());
  out.counts = Apportion(n, uniques, spec.stddev);

  out.values.reserve(n);
  for (size_t i = 0; i < uniques; ++i) {
    for (int32_t c = 0; c < out.counts[i]; ++c) {
      out.values.push_back(out.uniques[i]);
    }
  }
  rng_.Shuffle(&out.values);
  return out;
}

ColumnData WorkloadGen::GenerateMatching(const ColumnSpec& spec,
                                         const std::vector<int32_t>& source,
                                         double match_pct) {
  ColumnData out;
  const size_t n = spec.cardinality;
  if (n == 0) return out;
  size_t uniques = static_cast<size_t>(
      static_cast<double>(n) * (1.0 - spec.duplicate_pct / 100.0) + 0.5);
  uniques = std::clamp<size_t>(uniques, 1, n);

  size_t matching = static_cast<size_t>(uniques * match_pct / 100.0 + 0.5);
  matching = std::min(matching, std::min(uniques, source.size()));

  // Sample `matching` distinct values from the source without replacement.
  std::vector<int32_t> pool = source;
  for (size_t i = 0; i < matching; ++i) {
    const size_t j = i + rng_.NextBounded(pool.size() - i);
    std::swap(pool[i], pool[j]);
    out.uniques.push_back(pool[i]);
  }
  // Fresh values for the non-matching remainder.
  for (size_t i = matching; i < uniques; ++i) {
    out.uniques.push_back(NextUniqueValue());
  }

  out.counts = Apportion(n, uniques, spec.stddev);
  out.values.reserve(n);
  for (size_t i = 0; i < uniques; ++i) {
    for (int32_t c = 0; c < out.counts[i]; ++c) {
      out.values.push_back(out.uniques[i]);
    }
  }
  rng_.Shuffle(&out.values);
  return out;
}

std::unique_ptr<Relation> WorkloadGen::BuildRelation(const std::string& name,
                                                     const ColumnData& column) {
  Schema schema({{"key", Type::kInt32}, {"seq", Type::kInt32}});
  auto rel = std::make_unique<Relation>(name, schema);
  // Attach the array primary index first so inserts stream into it; it is
  // re-sealed afterwards (bulk bracket) to avoid quadratic insertion.
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  IndexConfig config;
  config.expected = column.values.size();
  auto index = std::make_unique<ArrayIndex>(std::move(ops), config);
  index->set_name(name + ".key_array");
  index->set_key_fields({0});
  ArrayIndex* raw = index.get();
  rel->AttachIndex(std::move(index));

  raw->BeginBulk();
  int32_t seq = 0;
  for (int32_t v : column.values) {
    rel->Insert({Value(v), Value(seq++)});
  }
  raw->EndBulk();
  return rel;
}

std::vector<double> WorkloadGen::DistributionCurve(const ColumnData& column,
                                                   int points) {
  std::vector<int32_t> counts = column.counts;
  std::sort(counts.begin(), counts.end(), std::greater<int32_t>());
  double total = 0;
  for (int32_t c : counts) total += c;

  std::vector<double> curve(points + 1, 0.0);
  if (counts.empty() || total == 0) return curve;
  double cum = 0;
  size_t next = 0;
  for (int p = 0; p <= points; ++p) {
    const size_t upto =
        static_cast<size_t>(counts.size() * (static_cast<double>(p) / points) +
                            0.5);
    for (; next < upto; ++next) cum += counts[next];
    curve[p] = 100.0 * cum / total;
  }
  return curve;
}

}  // namespace mmdb
