// Relation generation for the evaluation (Section 3.3.1).  The variable
// parameters are exactly the paper's:
//   (1) relation cardinality |R|;
//   (2) the join-column duplicate percentage and its distribution — a
//       specified number of unique values, each value's occurrence count
//       drawn by "a random sampling procedure based on a truncated normal
//       distribution with a variable standard deviation" (0.1 = skewed,
//       0.4 = moderately skewed, 0.8 = near-uniform; Graph 3);
//   (3) the semijoin selectivity — the smaller relation is "built with a
//       specified number of values from the larger relation", the rest
//       being fresh values that match nothing.
//
// Generated relations have schema (key:int32, seq:int32); `key` is the join
// column, `seq` a unique sequence number.  Every relation gets an array
// primary index, matching "an array index was used to scan the relations in
// our tests".

#ifndef MMDB_WORKLOAD_GENERATOR_H_
#define MMDB_WORKLOAD_GENERATOR_H_

#include <memory>
#include <vector>

#include "src/storage/relation.h"
#include "src/util/rng.h"

namespace mmdb {

/// Join-column composition of one relation.
struct ColumnSpec {
  size_t cardinality = 0;
  double duplicate_pct = 0.0;  ///< 0 = all unique, 100 = one value
  double stddev = 0.8;         ///< truncated-normal sigma for the counts
};

/// The expanded join column: distinct values plus the per-tuple multiset.
struct ColumnData {
  std::vector<int32_t> uniques;  ///< distinct values
  std::vector<int32_t> counts;   ///< occurrences per unique (parallel)
  std::vector<int32_t> values;   ///< cardinality values, shuffled
};

class WorkloadGen {
 public:
  explicit WorkloadGen(uint64_t seed = 42);

  /// Fresh relation column: unique values drawn from the generator's
  /// never-repeating stream, duplicated per the spec.
  ColumnData Generate(const ColumnSpec& spec);

  /// Column whose values partially come from `source` (another relation's
  /// distinct values): match_pct percent of this column's unique values are
  /// sampled from `source`, the rest are fresh and match nothing.
  /// match_pct = 100 reproduces the 100% semijoin selectivity of Tests 1-5.
  ColumnData GenerateMatching(const ColumnSpec& spec,
                              const std::vector<int32_t>& source,
                              double match_pct);

  /// Materializes a column as a relation (key:int32, seq:int32) with an
  /// array primary index.
  static std::unique_ptr<Relation> BuildRelation(const std::string& name,
                                                 const ColumnData& column);

  /// Graph 3: cumulative tuple percentage as a function of value
  /// percentage, values ordered by descending occupancy.  Returns
  /// `points`+1 samples for x = 0%, ..., 100%.
  static std::vector<double> DistributionCurve(const ColumnData& column,
                                               int points = 20);

  Rng& rng() { return rng_; }

 private:
  /// Next never-before-issued pseudo-random distinct value.
  int32_t NextUniqueValue();
  /// Occurrence counts for `uniques` values totaling `total` (each >= 1),
  /// truncated-normal weighted.
  std::vector<int32_t> Apportion(size_t total, size_t uniques, double stddev);

  Rng rng_;
  uint32_t unique_counter_ = 1;
};

}  // namespace mmdb

#endif  // MMDB_WORKLOAD_GENERATOR_H_
