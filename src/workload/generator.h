// Relation generation for the evaluation (Section 3.3.1).  The variable
// parameters are exactly the paper's:
//   (1) relation cardinality |R|;
//   (2) the join-column duplicate percentage and its distribution — a
//       specified number of unique values, each value's occurrence count
//       drawn by "a random sampling procedure based on a truncated normal
//       distribution with a variable standard deviation" (0.1 = skewed,
//       0.4 = moderately skewed, 0.8 = near-uniform; Graph 3);
//   (3) the semijoin selectivity — the smaller relation is "built with a
//       specified number of values from the larger relation", the rest
//       being fresh values that match nothing.
//
// Generated relations have schema (key:int32, seq:int32); `key` is the join
// column, `seq` a unique sequence number.  Every relation gets an array
// primary index, matching "an array index was used to scan the relations in
// our tests".

#ifndef MMDB_WORKLOAD_GENERATOR_H_
#define MMDB_WORKLOAD_GENERATOR_H_

#include <memory>
#include <vector>

#include "src/storage/relation.h"
#include "src/util/rng.h"

namespace mmdb {

/// Join-column composition of one relation.
struct ColumnSpec {
  size_t cardinality = 0;
  double duplicate_pct = 0.0;  ///< 0 = all unique, 100 = one value
  double stddev = 0.8;         ///< truncated-normal sigma for the counts
};

/// The expanded join column: distinct values plus the per-tuple multiset.
struct ColumnData {
  std::vector<int32_t> uniques;  ///< distinct values
  std::vector<int32_t> counts;   ///< occurrences per unique (parallel)
  std::vector<int32_t> values;   ///< cardinality values, shuffled
};

/// Zipf-distributed rank sampling over [0, n), rank 0 most popular, using
/// the incremental-zeta method of Gray et al. ("Quickly Generating
/// Billion-Record Synthetic Databases") as popularized by YCSB.  theta in
/// [0, 1): 0 is uniform, 0.99 is the YCSB default hot-key skew.  Setup is
/// O(n) (one zeta sum); Next() is O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Next rank in [0, n).  Consumes one draw from `rng`.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// One operation drawn from an OpMixGenerator.  Deliberately engine-agnostic
/// (plain keys, no SelectSpec/Database types) so src/workload stays below the
/// server layer; drivers translate ops into whatever API they exercise.
struct MixedOp {
  enum class Kind { kPointRead, kScanRead, kUpdate, kInsert };
  Kind kind = Kind::kPointRead;
  int64_t key = 0;         ///< point/update target, or scan lower bound
  int64_t key_hi = 0;      ///< scan upper bound (kScanRead only)
  uint32_t template_id = 0;  ///< which repeated query template to issue
};

/// Knobs of a key-value style operation mix over an integer key domain.
struct MixSpec {
  uint64_t key_domain = 100000;  ///< keys are in [0, key_domain)
  double zipf_theta = 0.99;      ///< key skew; 0 = uniform
  double read_pct = 95.0;        ///< reads vs writes
  double point_pct = 80.0;       ///< within reads: point lookups vs scans
  uint64_t scan_width = 100;     ///< key width of a range scan
  double insert_pct = 0.0;       ///< within writes: inserts vs updates
  uint32_t templates = 1;        ///< distinct query templates to rotate over
};

/// Draws an endless, seeded, reproducible stream of MixedOps: Zipf-skewed
/// key choice (hot ranks scrambled across the domain so popular keys are not
/// adjacent), read/write and point/scan mixes per MixSpec, and a rotating
/// template id so a small set of query shapes repeats — the access pattern
/// the reuse cache (src/cache) is built for.
class OpMixGenerator {
 public:
  OpMixGenerator(const MixSpec& spec, uint64_t seed = 42);

  MixedOp Next();

  const MixSpec& spec() const { return spec_; }
  Rng& rng() { return rng_; }

 private:
  /// Maps a popularity rank to a key, scattering hot ranks across the
  /// domain (FNV-1a scramble, as in YCSB's ScrambledZipfian).
  int64_t KeyForRank(uint64_t rank) const;

  MixSpec spec_;
  Rng rng_;
  ZipfGenerator zipf_;
};

class WorkloadGen {
 public:
  explicit WorkloadGen(uint64_t seed = 42);

  /// Fresh relation column: unique values drawn from the generator's
  /// never-repeating stream, duplicated per the spec.
  ColumnData Generate(const ColumnSpec& spec);

  /// Column whose values partially come from `source` (another relation's
  /// distinct values): match_pct percent of this column's unique values are
  /// sampled from `source`, the rest are fresh and match nothing.
  /// match_pct = 100 reproduces the 100% semijoin selectivity of Tests 1-5.
  ColumnData GenerateMatching(const ColumnSpec& spec,
                              const std::vector<int32_t>& source,
                              double match_pct);

  /// Materializes a column as a relation (key:int32, seq:int32) with an
  /// array primary index.
  static std::unique_ptr<Relation> BuildRelation(const std::string& name,
                                                 const ColumnData& column);

  /// Graph 3: cumulative tuple percentage as a function of value
  /// percentage, values ordered by descending occupancy.  Returns
  /// `points`+1 samples for x = 0%, ..., 100%.
  static std::vector<double> DistributionCurve(const ColumnData& column,
                                               int points = 20);

  Rng& rng() { return rng_; }

 private:
  /// Next never-before-issued pseudo-random distinct value.
  int32_t NextUniqueValue();
  /// Occurrence counts for `uniques` values totaling `total` (each >= 1),
  /// truncated-normal weighted.
  std::vector<int32_t> Apportion(size_t total, size_t uniques, double stddev);

  Rng rng_;
  uint32_t unique_counter_ = 1;
};

}  // namespace mmdb

#endif  // MMDB_WORKLOAD_GENERATOR_H_
