#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/exec/aggregate.h"
#include "src/exec/select.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

TempList ListOf(const Relation& rel) {
  ResultDescriptor desc({&rel});
  desc.AddColumn(0, uint16_t{0}, "key");
  desc.AddColumn(0, uint16_t{1}, "seq");
  TempList list(desc);
  rel.ForEachTuple([&](TupleRef t) { list.Append1(t); });
  return list;
}

TEST(AggregateTest, GlobalCountSumMinMaxAvg) {
  auto rel = testutil::IntRelation("r", {4, 2, 6});  // seq 0,1,2
  TempList in = ListOf(*rel);
  AggregateResult result = HashGroupBy(
      in, {},
      {{AggFn::kCount, 0, ""},
       {AggFn::kSum, 0, ""},
       {AggFn::kMin, 0, ""},
       {AggFn::kMax, 0, ""},
       {AggFn::kAvg, 0, ""}});
  ASSERT_EQ(result.rows.size(), 1u);
  const auto& aggs = result.rows[0].aggregates;
  EXPECT_EQ(aggs[0], Value(int64_t{3}));
  EXPECT_EQ(aggs[1], Value(int64_t{12}));
  EXPECT_EQ(aggs[2], Value(2));
  EXPECT_EQ(aggs[3], Value(6));
  EXPECT_EQ(aggs[4], Value(4.0));
  EXPECT_EQ(result.agg_labels[0], "count(*)");
  EXPECT_EQ(result.agg_labels[1], "sum(key)");
}

TEST(AggregateTest, GroupByCollapsesKeys) {
  auto rel = testutil::IntRelation("r", {1, 1, 2, 2, 2, 3});
  TempList in = ListOf(*rel);
  AggregateResult result =
      HashGroupBy(in, {0}, {{AggFn::kCount, 0, ""}, {AggFn::kSum, 1, ""}});
  ASSERT_EQ(result.rows.size(), 3u);
  std::map<int32_t, int64_t> counts, seq_sums;
  for (const AggregateRow& row : result.rows) {
    counts[row.group[0].AsInt32()] = row.aggregates[0].AsInt64();
    seq_sums[row.group[0].AsInt32()] = row.aggregates[1].AsInt64();
  }
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(counts[3], 1);
  // seq values: key1 -> 0+1, key2 -> 2+3+4, key3 -> 5.
  EXPECT_EQ(seq_sums[1], 1);
  EXPECT_EQ(seq_sums[2], 9);
  EXPECT_EQ(seq_sums[3], 5);
}

TEST(AggregateTest, GroupCountMatchesDistinctOracle) {
  Rng rng(5);
  std::vector<int32_t> keys(2000);
  for (auto& k : keys) k = static_cast<int32_t>(rng.NextBounded(37));
  auto rel = testutil::IntRelation("r", keys);
  TempList in = ListOf(*rel);
  AggregateResult result = HashGroupBy(in, {0}, {{AggFn::kCount, 0, ""}});
  std::set<int32_t> distinct(keys.begin(), keys.end());
  EXPECT_EQ(result.rows.size(), distinct.size());
  int64_t total = 0;
  for (const AggregateRow& row : result.rows) {
    total += row.aggregates[0].AsInt64();
  }
  EXPECT_EQ(total, 2000);
}

TEST(AggregateTest, EmptyInput) {
  auto rel = testutil::IntRelation("r", {});
  TempList in = ListOf(*rel);
  // Global count of nothing is a single zero row.
  AggregateResult global = HashGroupBy(in, {}, {{AggFn::kCount, 0, ""}});
  ASSERT_EQ(global.rows.size(), 1u);
  EXPECT_EQ(global.rows[0].aggregates[0], Value(int64_t{0}));
  // Grouped aggregation of nothing has no rows.
  AggregateResult grouped = HashGroupBy(in, {0}, {{AggFn::kCount, 0, ""}});
  EXPECT_TRUE(grouped.rows.empty());
}

TEST(AggregateTest, MinMaxOnStrings) {
  Schema schema({{"word", Type::kString}});
  Relation rel("w", schema);
  rel.Insert({Value("pear")});
  rel.Insert({Value("apple")});
  rel.Insert({Value("zucchini")});
  ResultDescriptor desc({&rel});
  desc.AddColumn(0, uint16_t{0}, "word");
  TempList in(desc);
  rel.ForEachTuple([&](TupleRef t) { in.Append1(t); });

  AggregateResult result =
      HashGroupBy(in, {}, {{AggFn::kMin, 0, ""}, {AggFn::kMax, 0, ""}});
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].aggregates[0], Value("apple"));
  EXPECT_EQ(result.rows[0].aggregates[1], Value("zucchini"));
}

TEST(AggregateTest, DoubleSumAndAvg) {
  Schema schema({{"x", Type::kDouble}});
  Relation rel("d", schema);
  rel.Insert({Value(1.5)});
  rel.Insert({Value(2.5)});
  ResultDescriptor desc({&rel});
  desc.AddColumn(0, uint16_t{0}, "x");
  TempList in(desc);
  rel.ForEachTuple([&](TupleRef t) { in.Append1(t); });
  AggregateResult result =
      HashGroupBy(in, {}, {{AggFn::kSum, 0, ""}, {AggFn::kAvg, 0, ""}});
  EXPECT_EQ(result.rows[0].aggregates[0], Value(4.0));
  EXPECT_EQ(result.rows[0].aggregates[1], Value(2.0));
}

TEST(AggregateTest, RowToStringAndLabels) {
  auto rel = testutil::IntRelation("r", {1, 1});
  TempList in = ListOf(*rel);
  AggregateResult result =
      HashGroupBy(in, {0}, {{AggFn::kCount, 0, "n"}});
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.agg_labels[0], "n");
  EXPECT_EQ(result.group_labels[0], "key");
  EXPECT_EQ(result.RowToString(0), "(1, 2)");
}

TEST(AggregateTest, GroupByOverJoinResultColumns) {
  // Aggregate over a two-source temp list: employees per department name.
  Schema dept_schema({{"name", Type::kString}, {"id", Type::kInt32}});
  Relation dept("dept", dept_schema);
  TupleRef toy = dept.Insert({Value("Toy"), Value(1)});
  TupleRef shoe = dept.Insert({Value("Shoe"), Value(2)});
  Schema emp_schema({{"age", Type::kInt32}});
  Relation emp("emp", emp_schema);
  TupleRef e1 = emp.Insert({Value(30)});
  TupleRef e2 = emp.Insert({Value(40)});
  TupleRef e3 = emp.Insert({Value(50)});

  ResultDescriptor desc({&emp, &dept});
  desc.AddColumn(1, uint16_t{0}, "dept");
  desc.AddColumn(0, uint16_t{0}, "age");
  TempList joined(desc);
  joined.Append2(e1, toy);
  joined.Append2(e2, toy);
  joined.Append2(e3, shoe);

  AggregateResult result = HashGroupBy(
      joined, {0}, {{AggFn::kCount, 0, ""}, {AggFn::kAvg, 1, ""}});
  ASSERT_EQ(result.rows.size(), 2u);
  std::map<std::string, double> avg_age;
  for (const AggregateRow& row : result.rows) {
    avg_age[row.group[0].AsString()] = row.aggregates[1].AsDouble();
  }
  EXPECT_DOUBLE_EQ(avg_age["Toy"], 35.0);
  EXPECT_DOUBLE_EQ(avg_age["Shoe"], 50.0);
}

}  // namespace
}  // namespace mmdb
