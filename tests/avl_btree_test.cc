// Structure-specific tests for the AVL Tree, the (original) B Tree, and
// the footnote-3 B+ Tree comparison.

#include <gtest/gtest.h>

#include <cmath>

#include "src/index/avl_tree.h"
#include "src/index/bplus_tree.h"
#include "src/index/btree.h"
#include "src/util/counters.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

std::unique_ptr<AvlTree> MakeAvl(Relation* rel) {
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  return std::make_unique<AvlTree>(std::move(ops), IndexConfig());
}

std::unique_ptr<BTree> MakeBTree(Relation* rel, int node_size) {
  IndexConfig config;
  config.node_size = node_size;
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  return std::make_unique<BTree>(std::move(ops), config);
}

// ---- AVL --------------------------------------------------------------------

TEST(AvlTreeTest, HeightStaysAvlBounded) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(4096));
  auto tree = MakeAvl(rel.get());
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
  EXPECT_TRUE(tree->CheckInvariants());
  EXPECT_LE(tree->Height(), static_cast<int>(1.45 * std::log2(4096.0)) + 2);
}

TEST(AvlTreeTest, SequentialInsertTriggersRotations) {
  std::vector<int32_t> keys(1024);
  for (int i = 0; i < 1024; ++i) keys[i] = i;
  auto rel = testutil::IntRelation("r", keys);
  auto tree = MakeAvl(rel.get());
  counters::Reset();
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
#if defined(MMDB_COUNTERS)
  EXPECT_GT(counters::Snapshot().rotations, 500u);
#endif
  EXPECT_TRUE(tree->CheckInvariants());
  EXPECT_LE(tree->Height(), 11);  // perfectly balanced would be 11
}

TEST(AvlTreeTest, DeleteWithTwoChildren) {
  auto rel = testutil::IntRelation("r", {50, 30, 70, 20, 40, 60, 80});
  auto tree = MakeAvl(rel.get());
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    tree->Insert(t);
  });
  // Delete the root-ish node with two children (key 50, first inserted).
  for (TupleRef t : tuples) {
    if (testutil::KeyOf(t, *rel) == 50) ASSERT_TRUE(tree->Erase(t));
  }
  EXPECT_TRUE(tree->CheckInvariants());
  EXPECT_EQ(tree->size(), 6u);
  EXPECT_EQ(tree->Find(Value(50)), nullptr);
  EXPECT_NE(tree->Find(Value(40)), nullptr);
}

TEST(AvlTreeTest, StorageFactorIsHigh) {
  // The paper's storage complaint: two pointers + control per item.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  auto tree = MakeAvl(rel.get());
  rel->ForEachTuple([&](TupleRef t) { tree->Insert(t); });
  const double factor = static_cast<double>(tree->StorageBytes()) /
                        (1000.0 * sizeof(TupleRef));
  EXPECT_GE(factor, 3.0);  // item + left + right + parent + height
}

// ---- B Tree -----------------------------------------------------------------

TEST(BTreeTest, UniformLeafDepthMaintained) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(3000));
  auto tree = MakeBTree(rel.get(), 8);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
  EXPECT_TRUE(tree->CheckInvariants());  // includes uniform-depth check
  EXPECT_EQ(tree->size(), 3000u);
}

TEST(BTreeTest, RootSplitGrowsHeight) {
  std::vector<int32_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[i] = i;
  auto rel = testutil::IntRelation("r", keys);
  auto tree = MakeBTree(rel.get(), 4);
  int last_height = 0;
  rel->ForEachTuple([&](TupleRef t) {
    tree->Insert(t);
    EXPECT_GE(tree->Height(), last_height);
    last_height = tree->Height();
  });
  EXPECT_GE(tree->Height(), 3);
  EXPECT_TRUE(tree->CheckInvariants());
}

TEST(BTreeTest, DeleteCausesBorrowAndMerge) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  auto tree = MakeBTree(rel.get(), 6);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    tree->Insert(t);
  });
  counters::Reset();
  Rng rng(21);
  rng.Shuffle(&tuples);
  for (size_t i = 0; i < 900; ++i) {
    ASSERT_TRUE(tree->Erase(tuples[i]));
    if (i % 100 == 0) ASSERT_TRUE(tree->CheckInvariants());
  }
#if defined(MMDB_COUNTERS)
  EXPECT_GT(counters::Snapshot().merges, 0u);
#endif
  EXPECT_TRUE(tree->CheckInvariants());
  EXPECT_EQ(tree->size(), 100u);
}

TEST(BTreeTest, InteriorDeleteUsesPredecessor) {
  std::vector<int32_t> keys(64);
  for (int i = 0; i < 64; ++i) keys[i] = i;
  auto rel = testutil::IntRelation("r", keys);
  auto tree = MakeBTree(rel.get(), 4);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    tree->Insert(t);
  });
  // Deleting in insertion order repeatedly hits interior items.
  for (TupleRef t : tuples) {
    ASSERT_TRUE(tree->Erase(t));
    ASSERT_TRUE(tree->CheckInvariants());
  }
  EXPECT_EQ(tree->size(), 0u);
}

TEST(BTreeTest, MinimumNodeSizeClamped) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  IndexConfig config;
  config.node_size = 1;  // clamped to 2
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  BTree tree(std::move(ops), config);
  EXPECT_EQ(tree.max_items(), 2);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree.Insert(t)); });
  EXPECT_TRUE(tree.CheckInvariants());
}

// ---- B+ Tree ----------------------------------------------------------------

std::unique_ptr<BPlusTree> MakeBPlus(Relation* rel, int node_size) {
  IndexConfig config;
  config.node_size = node_size;
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  return std::make_unique<BPlusTree>(std::move(ops), config);
}

TEST(BPlusTreeTest, Footnote3StorageClaim) {
  // "The B+ Tree uses more storage than the B Tree": separators duplicate
  // keys that the B Tree stores once, plus leaf chain pointers.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(5000));
  for (int node_size : {6, 20, 50}) {
    auto b = MakeBTree(rel.get(), node_size);
    auto bplus = MakeBPlus(rel.get(), node_size);
    rel->ForEachTuple([&](TupleRef t) {
      b->Insert(t);
      bplus->Insert(t);
    });
    EXPECT_GT(bplus->StorageBytes(), b->StorageBytes())
        << "node size " << node_size;
  }
}

TEST(BPlusTreeTest, LeafChainCoversEverythingInOrder) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(3000));
  auto tree = MakeBPlus(rel.get(), 8);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
  EXPECT_TRUE(tree->CheckInvariants());  // includes the leaf-chain walk
  EXPECT_GT(tree->leaf_count(), tree->internal_count());
  // Cursor scan via the chain is sorted and complete.
  int32_t expected = 0;
  for (auto c = tree->First(); c->Valid(); c->Next()) {
    EXPECT_EQ(testutil::KeyOf(c->Get(), *rel), expected++);
  }
  EXPECT_EQ(expected, 3000);
}

TEST(BPlusTreeTest, SeparatorsStayLiveAcrossDeletes) {
  // Deleting a leaf's smallest item must re-point the naming separator; a
  // stale separator could alias a recycled partition slot.  Delete in key
  // order (always the leftmost item of some leaf) and keep searching.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  auto tree = MakeBPlus(rel.get(), 4);
  std::vector<TupleRef> by_key(1000);
  rel->ForEachTuple([&](TupleRef t) {
    tree->Insert(t);
    by_key[testutil::KeyOf(t, *rel)] = t;
  });
  for (int32_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree->Erase(by_key[k]));
    if (k % 100 == 0) {
      ASSERT_TRUE(tree->CheckInvariants()) << "after deleting key " << k;
      // Every remaining key still findable.
      for (int32_t probe = k + 1; probe < std::min(k + 20, 1000); ++probe) {
        EXPECT_EQ(tree->Find(Value(probe)), by_key[probe]);
      }
    }
  }
  EXPECT_EQ(tree->size(), 0u);
}

TEST(BTreeTest, LeafHeavyStorageProfile) {
  // Footnote 4: leaves greatly outnumber internal nodes, so storage per
  // element stays near one pointer slot for large node sizes.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(5000));
  auto tree = MakeBTree(rel.get(), 30);
  rel->ForEachTuple([&](TupleRef t) { tree->Insert(t); });
  const double factor = static_cast<double>(tree->StorageBytes()) /
                        (5000.0 * sizeof(TupleRef));
  EXPECT_LT(factor, 2.5);
  EXPECT_TRUE(tree->CheckInvariants());
}

}  // namespace
}  // namespace mmdb
