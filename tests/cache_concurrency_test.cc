// Reuse-cache concurrency: hot cached readers racing partition-local
// writers through the QueryService.  The invariants under test are the
// cache's two load-bearing promises (reuse_cache.h):
//
//   * zero stale reads — a committed-and-acked write is visible to every
//     later read, cached or not, because the writer invalidates overlapping
//     entries before its commit is acknowledged;
//   * precision — writers to partitions a cached result never read do not
//     disturb it (no invalidation, no refill churn).
//
// Run under TSan in CI (the cache's internal mutex, the lock-free hit path,
// and the commit-path invalidation all cross threads here).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/server/query_service.h"

namespace mmdb {
namespace {

constexpr uint32_t kSlotCap = 16;  // partition capacity: key k lives in k/16

std::unique_ptr<Database> MakeAccountsDb(int rows) {
  auto db = std::make_unique<Database>();
  db->reuse_cache().SetEnabled(true);  // the subject under test, env aside
  Relation::Options opts;
  opts.partition.slot_capacity = kSlotCap;
  db->CreateTable("accounts", {{"id", Type::kInt32}, {"bal", Type::kInt32}},
                  opts);
  // A unique (relation-global) index on id makes point reads precise: the
  // service records only the partitions the result rows live in, and every
  // matching-set-changing write escalates to structure-X.
  IndexConfig unique;
  unique.unique = true;
  EXPECT_NE(db->CreateIndex("accounts", "id", IndexKind::kChainedBucketHash, unique),
            nullptr);
  for (int i = 0; i < rows; ++i) {
    db->Insert("accounts", {Value(i), Value(1000)});
  }
  return db;
}

SelectSpec PointRead(int32_t key) {
  SelectSpec sel;
  sel.table = "accounts";
  sel.where = {WhereClause{"id", CompareOp::kEq, Value(key)}};
  sel.columns = {"accounts.bal"};
  return sel;
}

IncrementSpec Bump(int32_t key) {
  IncrementSpec inc;
  inc.table = "accounts";
  inc.match = WhereClause{"id", CompareOp::kEq, Value(key)};
  inc.field = "bal";
  inc.delta = 1;
  return inc;
}

// Readers on hot keys race writers incrementing the same keys.  Each acked
// increment raises that key's published floor *after* the ack; every read
// must observe at least the floor it loaded before issuing the select.  A
// cache entry surviving a commit-acked overlapping write would violate
// this immediately.
TEST(CacheConcurrencyTest, ZeroStaleReadsUnderOverlappingWrites) {
  constexpr int kKeys = 8;       // all hot: maximal cache/DML collision
  constexpr int kWrites = 300;   // per writer
  constexpr int kReads = 600;    // per reader
  auto db = MakeAccountsDb(64);

  ServiceOptions sopts;
  sopts.workers = 4;
  QueryService service(db.get(), sopts);

  std::atomic<int> floor[kKeys];
  for (auto& f : floor) f.store(0);
  std::atomic<bool> failed{false};

  auto writer = [&] {
    Session* s = service.OpenSession();
    for (int i = 0; i < kWrites && !failed.load(); ++i) {
      const int k = i % kKeys;
      OpResult r = service.Execute(s, Bump(k));
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      // The Execute return *is* the commit ack; publish the new floor.
      floor[k].fetch_add(1, std::memory_order_release);
    }
    service.CloseSession(s);
  };

  auto reader = [&] {
    Session* s = service.OpenSession();
    for (int i = 0; i < kReads && !failed.load(); ++i) {
      const int k = i % kKeys;
      const int lo = floor[k].load(std::memory_order_acquire);
      OpResult r = service.Execute(s, PointRead(k));
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      ASSERT_EQ(r.rows.size(), 1u);
      const int32_t bal = r.rows[0][0].AsInt32();
      if (bal < 1000 + lo) {
        failed.store(true);
        FAIL() << "stale read: key " << k << " bal " << bal
               << " below acked floor " << 1000 + lo;
      }
    }
    service.CloseSession(s);
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  threads.emplace_back(writer);
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  // The mix must actually have exercised the cache.
  const cache::CacheStats s = db->reuse_cache().Stats();
  EXPECT_GT(s.fills, 0u);
  EXPECT_GT(s.invalidations, 0u);
}

// Writers confined to partitions a cached read never touched must not
// invalidate it: the hot entry keeps serving hits with zero refills.
TEST(CacheConcurrencyTest, DisjointPartitionWritesLeaveEntriesAlone) {
  auto db = MakeAccountsDb(64);  // partitions: keys 0-15, 16-31, 32-47, ...

  ServiceOptions sopts;
  sopts.workers = 2;
  QueryService service(db.get(), sopts);
  Session* s = service.OpenSession();

  // Warm the cache for a key in partition 0 and confirm the hit path.
  ASSERT_TRUE(service.Execute(s, PointRead(3)).ok());
  OpResult warm = service.Execute(s, PointRead(3));
  ASSERT_TRUE(warm.ok());
  ASSERT_NE(warm.plan.find("cache: hit"), std::string::npos) << warm.plan;

  const cache::CacheStats before = db->reuse_cache().Stats();

  // Hammer keys 32..63 (partitions 2 and 3) from two threads.
  auto writer = [&](int32_t lo) {
    Session* ws = service.OpenSession();
    for (int i = 0; i < 200; ++i) {
      OpResult r = service.Execute(ws, Bump(lo + i % 16));
      ASSERT_TRUE(r.ok()) << r.status.ToString();
    }
    service.CloseSession(ws);
  };
  std::thread w1(writer, 32), w2(writer, 48);
  w1.join();
  w2.join();

  // The partition-0 entry survived every disjoint write.
  OpResult after = service.Execute(s, PointRead(3));
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.plan.find("cache: hit"), std::string::npos) << after.plan;
  EXPECT_EQ(after.rows[0][0], Value(1000));

  const cache::CacheStats now = db->reuse_cache().Stats();
  // The precise result entry survived (zero refill churn).  At most the
  // builder's conservative whole-relation *intermediate* entry may die to
  // the first disjoint write; the result entry itself must not.
  EXPECT_EQ(now.fills, before.fills);
  EXPECT_LE(now.invalidations, before.invalidations + 1);
  service.CloseSession(s);
}

// Multi-conjunct point queries (id = k AND bal > x) get the same
// partition-precise footprint: entries survive writes to other partitions,
// but a partition-local bal update that flips the matched tuple INTO the
// result — even though the cached result was empty — must invalidate.
TEST(CacheConcurrencyTest, MultiConjunctPointFootprintIsPreciseAndSound) {
  auto db = MakeAccountsDb(64);
  ServiceOptions sopts;
  sopts.workers = 1;
  QueryService service(db.get(), sopts);
  Session* s = service.OpenSession();

  SelectSpec sel;
  sel.table = "accounts";
  sel.where = {WhereClause{"id", CompareOp::kEq, Value(3)},
               WhereClause{"bal", CompareOp::kGt, Value(1500)}};
  sel.columns = {"accounts.bal"};

  // Warm: id=3 has bal=1000, so the cached result is EMPTY.
  ASSERT_TRUE(service.Execute(s, sel).ok());
  OpResult warm = service.Execute(s, sel);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm.rows.size(), 0u);
  ASSERT_NE(warm.plan.find("cache: hit"), std::string::npos) << warm.plan;

  // Disjoint-partition writes leave the entry alone (precision).
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(service.Execute(s, Bump(32 + i % 16)).ok());
  }
  OpResult still = service.Execute(s, sel);
  ASSERT_TRUE(still.ok());
  EXPECT_NE(still.plan.find("cache: hit"), std::string::npos) << still.plan;

  // Now raise id=3's bal past the threshold: a partition-local update to a
  // tuple matching the point conjunct but previously failing the bal
  // conjunct.  The footprint must cover its partition — the stale empty
  // result may not survive.
  UpdateSpec up;
  up.table = "accounts";
  up.match = WhereClause{"id", CompareOp::kEq, Value(3)};
  up.set_field = "bal";
  up.set_value = Value(2000);
  ASSERT_TRUE(service.Execute(s, up).ok());

  OpResult after = service.Execute(s, sel);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.rows.size(), 1u) << "stale empty result served from cache";
  EXPECT_EQ(after.rows[0][0], Value(2000));
  service.CloseSession(s);
}

// Sanity for the overlap direction of the same setup: one increment to the
// cached key invalidates exactly that entry and the next read recomputes.
TEST(CacheConcurrencyTest, OverlappingWriteInvalidatesBeforeAck) {
  auto db = MakeAccountsDb(64);

  ServiceOptions sopts;
  sopts.workers = 1;
  QueryService service(db.get(), sopts);
  Session* s = service.OpenSession();

  ASSERT_TRUE(service.Execute(s, PointRead(5)).ok());
  OpResult warm = service.Execute(s, PointRead(5));
  ASSERT_NE(warm.plan.find("cache: hit"), std::string::npos) << warm.plan;

  const uint64_t inv_before = db->reuse_cache().Stats().invalidations;
  ASSERT_TRUE(service.Execute(s, Bump(5)).ok());
  EXPECT_GT(db->reuse_cache().Stats().invalidations, inv_before);

  OpResult fresh = service.Execute(s, PointRead(5));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.plan.find("cache: hit"), std::string::npos) << fresh.plan;
  EXPECT_EQ(fresh.rows[0][0], Value(1001));
  service.CloseSession(s);
}

}  // namespace
}  // namespace mmdb
