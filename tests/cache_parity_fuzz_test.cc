// Cache parity fuzz: replay identical random DML/SELECT interleavings
// against two databases — cache on vs cache off — and diff every result
// set.  Any divergence (a stale hit, a wrong footprint, a fingerprint
// collision, a missed invalidation) shows up as a mismatched result.
//
// Result-ordering rules: an ORDERED select must match row for row; an
// unordered select is compared as a multiset (the engine never promises an
// order for plain selects, and a cached result may legally differ in order
// from a recomputed one).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/core/query.h"
#include "src/server/query_service.h"
#include "src/util/rng.h"

namespace mmdb {
namespace {

std::unique_ptr<Database> MakeDb(bool cache_on) {
  auto db = std::make_unique<Database>();
  db->reuse_cache().SetEnabled(cache_on);
  Relation::Options opts;
  opts.partition.slot_capacity = 32;  // several partitions at our scale
  db->CreateTable("t", {{"id", Type::kInt32},
                        {"grp", Type::kInt32},
                        {"val", Type::kInt32},
                        {"name", Type::kString}},
                  opts);
  IndexConfig unique;
  unique.unique = true;
  EXPECT_NE(db->CreateIndex("t", "id", IndexKind::kChainedBucketHash, unique), nullptr);
  EXPECT_NE(db->CreateIndex("t", "grp", IndexKind::kTTree), nullptr);
  db->CreateTable("g", {{"gid", Type::kInt32}, {"label", Type::kString}});
  for (int i = 0; i < 8; ++i) {
    db->Insert("g", {Value(i), Value("g" + std::to_string(i))});
  }
  for (int i = 0; i < 200; ++i) {
    db->Insert("t", {Value(i), Value(i % 8), Value(i * 3),
                     Value("n" + std::to_string(i % 10))});
  }
  return db;
}

std::vector<std::string> RowStrings(const OpResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const std::vector<Value>& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '\x1f';
    }
    out.push_back(std::move(s));
  }
  return out;
}

void ExpectSameResult(const OpResult& on, const OpResult& off, bool ordered,
                      const std::string& what) {
  ASSERT_EQ(on.ok(), off.ok()) << what << ": " << on.status.ToString()
                               << " vs " << off.status.ToString();
  if (!on.ok()) return;
  EXPECT_EQ(on.columns, off.columns) << what;
  std::vector<std::string> a = RowStrings(on);
  std::vector<std::string> b = RowStrings(off);
  if (!ordered) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
  }
  EXPECT_EQ(a, b) << what << " (cache-on vs cache-off rows diverge)";
}

/// One seeded interleaving: every op runs against both databases in the
/// same order; every select's result set is diffed.
void RunInterleaving(uint64_t seed, int ops) {
  auto db_on = MakeDb(true);
  auto db_off = MakeDb(false);
  ASSERT_TRUE(db_on->reuse_cache().enabled());
  ASSERT_FALSE(db_off->reuse_cache().enabled());

  ServiceOptions sopts;
  sopts.workers = 1;  // sequential: both replicas see identical histories
  QueryService svc_on(db_on.get(), sopts);
  QueryService svc_off(db_off.get(), sopts);
  Session* s_on = svc_on.OpenSession();
  Session* s_off = svc_off.OpenSession();

  Rng rng(seed);
  int32_t next_id = 200;
  for (int i = 0; i < ops; ++i) {
    const uint64_t roll = rng.NextBounded(100);
    Operation op;
    bool ordered = false;
    if (roll < 55) {
      // Select, biased toward a few hot shapes so the cache actually hits.
      SelectSpec sel;
      sel.table = "t";
      switch (rng.NextBounded(9)) {
        case 0:  // hot point read on the unique key (precise footprint)
          sel.where = {{"id", CompareOp::kEq,
                        Value(int32_t(rng.NextBounded(8)))}};
          sel.columns = {"t.val"};
          break;
        case 1:  // group scan
          sel.where = {{"grp", CompareOp::kEq,
                        Value(int32_t(rng.NextBounded(8)))}};
          break;
        case 2:  // range + projection
          sel.where = {{"val", CompareOp::kGt,
                        Value(int32_t(rng.NextBounded(300)))}};
          sel.columns = {"t.id", "t.val"};
          break;
        case 3:  // distinct + ordered (full-key cache path; exact compare)
          sel.where = {{"grp", CompareOp::kLt,
                        Value(int32_t(rng.NextBounded(8)))}};
          sel.columns = {"t.name"};
          sel.distinct = true;
          sel.ordered = true;
          ordered = true;
          break;
        case 4: {  // equijoin against the dimension table
          sel.where = {{"id", CompareOp::kLt,
                        Value(int32_t(rng.NextBounded(64)))}};
          JoinClause j;
          j.table = "g";
          j.left_field = "grp";
          j.right_field = "gid";
          sel.join = j;
          sel.columns = {"t.id", "g.label"};
          break;
        }
        case 5:  // multi-conjunct point on the unique key: the precise
                 // footprint must cover every tuple matching id=k alone,
                 // so the partition-local val updates below can flip a
                 // tuple into/out of this result and must invalidate.
          sel.where = {{"id", CompareOp::kEq,
                        Value(int32_t(rng.NextBounded(8)))},
                       {"val", CompareOp::kGt,
                        Value(int32_t(rng.NextBounded(300)))}};
          sel.columns = {"t.id", "t.val"};
          break;
        case 6:  // point conjunct last, not first: the precise-footprint
                 // scan must find it anywhere in the conjunct list.
          sel.where = {{"val", CompareOp::kLt,
                        Value(int32_t(rng.NextBounded(300)))},
                       {"id", CompareOp::kEq,
                        Value(int32_t(rng.NextBounded(64)))}};
          break;
        case 7:  // multi-conjunct point on grp: its T Tree is
                 // partition-local, so this must stay relation-wide.
          sel.where = {{"grp", CompareOp::kEq,
                        Value(int32_t(rng.NextBounded(8)))},
                       {"val", CompareOp::kGt,
                        Value(int32_t(rng.NextBounded(300)))}};
          break;
        default:  // full scan, sometimes analyzed (analyze must not skew)
          sel.analyze = rng.NextBounded(2) == 0;
          break;
      }
      op = sel;
    } else if (roll < 70) {
      InsertSpec ins;
      ins.table = "t";
      // Mostly fresh ids, sometimes a duplicate (must fail identically).
      const int32_t id = rng.NextBounded(10) == 0
                             ? int32_t(rng.NextBounded(64))
                             : next_id++;
      ins.values = {Value(id), Value(int32_t(rng.NextBounded(8))),
                    Value(int32_t(rng.NextBounded(300))),
                    Value("n" + std::to_string(rng.NextBounded(10)))};
      op = ins;
    } else if (roll < 80) {
      UpdateSpec up;
      up.table = "t";
      up.match = {"id", CompareOp::kEq, Value(int32_t(rng.NextBounded(64)))};
      if (rng.NextBounded(3) == 0) {
        // String update: relocation risk, escalates to structure-X.
        up.set_field = "name";
        up.set_value = Value("x" + std::to_string(rng.NextBounded(10)));
      } else {
        up.set_field = "val";
        up.set_value = Value(int32_t(rng.NextBounded(300)));
      }
      op = up;
    } else if (roll < 92) {
      IncrementSpec inc;
      inc.table = "t";
      inc.match = {"id", CompareOp::kEq, Value(int32_t(rng.NextBounded(64)))};
      inc.field = "val";
      inc.delta = 1 + int64_t(rng.NextBounded(5));
      op = inc;
    } else {
      DeleteSpec del;
      del.table = "t";
      del.match = {"id", CompareOp::kEq,
                   Value(int32_t(64 + rng.NextBounded(256)))};
      op = del;
    }

    OpResult r_on = svc_on.Execute(s_on, op);
    OpResult r_off = svc_off.Execute(s_off, op);
    ExpectSameResult(r_on, r_off, ordered,
                     "seed " + std::to_string(seed) + " op " +
                         std::to_string(i) + " kind " +
                         std::to_string(op.index()));
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }

  // The run is only meaningful if the cache-on side actually cached.
  EXPECT_GT(db_on->reuse_cache().Stats().hits, 0u) << "seed " << seed;
  EXPECT_EQ(db_off->reuse_cache().Stats().fills, 0u);
  svc_on.CloseSession(s_on);
  svc_off.CloseSession(s_off);
}

TEST(CacheParityFuzzTest, ServiceInterleavings) {
  RunInterleaving(101, 400);
  RunInterleaving(202, 400);
  RunInterleaving(303, 400);
}

// The same idea one layer down: QueryBuilder repeats interleaved with
// fast-path DML, cache-on vs cache-off, including the base-hit projection
// path that re-projects a cached intermediate.
TEST(CacheParityFuzzTest, BuilderInterleavings) {
  auto db_on = MakeDb(true);
  auto db_off = MakeDb(false);

  Rng rng(77);
  auto run = [&](Database& db, uint64_t which) -> std::vector<std::string> {
    QueryBuilder qb = db.Query("t");
    switch (which) {
      case 0:
        qb.Where("grp", CompareOp::kEq, 3).Select({"t.id", "t.val"});
        break;
      case 1:
        qb.Where("grp", CompareOp::kEq, 3).Select({"t.id"});  // base reuse
        break;
      case 2:
        qb.Where("val", CompareOp::kGt, 100)
            .Select({"t.name"})
            .Distinct()
            .OrderBySelected();
        break;
      default:
        qb.Where("id", CompareOp::kLt, 30);
        break;
    }
    QueryResult r = qb.Run();
    std::vector<std::string> rows;
    const size_t cols = r.rows.descriptor().columns().size();
    for (size_t i = 0; i < r.rows.size(); ++i) {
      std::string s;
      for (size_t c = 0; c < cols; ++c) {
        s += r.rows.GetValue(i, c).ToString();
        s += '\x1f';
      }
      rows.push_back(std::move(s));
    }
    if (which != 2) std::sort(rows.begin(), rows.end());
    return rows;
  };

  int32_t next_id = 500;
  for (int i = 0; i < 300; ++i) {
    if (rng.NextBounded(4) == 0) {
      // Fast-path DML (invalidates relation-wide on the cache-on side).
      db_on->Insert("t", {Value(next_id), Value(int32_t(next_id % 8)),
                          Value(int32_t(next_id * 2)), Value("z")});
      db_off->Insert("t", {Value(next_id), Value(int32_t(next_id % 8)),
                           Value(int32_t(next_id * 2)), Value("z")});
      ++next_id;
    }
    const uint64_t which = rng.NextBounded(4);
    EXPECT_EQ(run(*db_on, which), run(*db_off, which))
        << "builder divergence at iteration " << i << " shape " << which;
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(db_on->reuse_cache().Stats().hits, 0u);
}

}  // namespace
}  // namespace mmdb
