// The reuse cache (src/cache): fingerprint canonicalization, LRU/budget
// eviction, partition-granular invalidation, and the end-to-end hit paths
// through QueryBuilder, QueryService, and the shell CACHE command.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/fingerprint.h"
#include "src/cache/reuse_cache.h"
#include "src/core/database.h"
#include "src/core/query.h"
#include "src/core/shell.h"
#include "src/server/query_service.h"
#include "src/util/metrics.h"

namespace mmdb {
namespace {

using cache::CacheStats;
using cache::ColumnsCacheable;
using cache::FingerprintBase;
using cache::FingerprintFull;
using cache::Footprint;
using cache::NormalizeColumns;
using cache::QueryShape;
using cache::ResultPayload;
using cache::ReuseCache;
using cache::ShapeConjunct;

// ---- Fingerprints -----------------------------------------------------------

QueryShape EmpShape() {
  QueryShape s;
  s.table = "emp";
  s.where = {{"age", CompareOp::kGt, Value(40)},
             {"id", CompareOp::kEq, Value(7)}};
  s.columns = {"emp.name", "emp.age"};
  return s;
}

TEST(FingerprintTest, ConjunctOrderIrrelevant) {
  QueryShape a = EmpShape();
  QueryShape b = EmpShape();
  std::swap(b.where[0], b.where[1]);
  EXPECT_EQ(FingerprintBase(a), FingerprintBase(b));
  EXPECT_EQ(FingerprintFull(a), FingerprintFull(b));
}

TEST(FingerprintTest, IntegerWidthNormalized) {
  // int32 7 and int64 7 select the same tuples (Value::Compare is
  // cross-width), so their keys must collide.
  QueryShape a = EmpShape();
  QueryShape b = EmpShape();
  b.where[1].value = Value(int64_t{7});
  EXPECT_EQ(FingerprintFull(a), FingerprintFull(b));
}

TEST(FingerprintTest, DifferentPredicatesDifferentKeys) {
  QueryShape a = EmpShape();
  QueryShape op = EmpShape();
  op.where[0].op = CompareOp::kGe;
  QueryShape val = EmpShape();
  val.where[0].value = Value(41);
  QueryShape field = EmpShape();
  field.where[0].field = "id";
  EXPECT_NE(FingerprintBase(a), FingerprintBase(op));
  EXPECT_NE(FingerprintBase(a), FingerprintBase(val));
  EXPECT_NE(FingerprintBase(a), FingerprintBase(field));
}

TEST(FingerprintTest, BaseKeyIgnoresProjection) {
  QueryShape a = EmpShape();
  QueryShape b = EmpShape();
  b.columns = {"emp.age"};
  b.distinct = true;
  b.ordered = true;
  EXPECT_EQ(FingerprintBase(a), FingerprintBase(b));
  EXPECT_NE(FingerprintFull(a), FingerprintFull(b));
}

TEST(FingerprintTest, ColumnOrderSignificant) {
  // Output order is part of the result; swapped columns are a different
  // full key (but the same base key).
  QueryShape a = EmpShape();
  QueryShape b = EmpShape();
  std::swap(b.columns[0], b.columns[1]);
  EXPECT_NE(FingerprintFull(a), FingerprintFull(b));
  EXPECT_EQ(FingerprintBase(a), FingerprintBase(b));
}

TEST(FingerprintTest, DistinctAndOrderedAreDistinctKeys) {
  QueryShape plain = EmpShape();
  QueryShape d = EmpShape();
  d.distinct = true;
  QueryShape o = EmpShape();
  o.ordered = true;
  EXPECT_NE(FingerprintFull(plain), FingerprintFull(d));
  EXPECT_NE(FingerprintFull(plain), FingerprintFull(o));
  EXPECT_NE(FingerprintFull(d), FingerprintFull(o));
}

TEST(FingerprintTest, NormalizeColumnsMatchesExplicitSpelling) {
  QueryShape bare = EmpShape();
  bare.columns = {"name", "age"};
  NormalizeColumns(&bare);
  EXPECT_EQ(bare.columns, (std::vector<std::string>{"emp.name", "emp.age"}));
  EXPECT_EQ(FingerprintFull(bare), FingerprintFull(EmpShape()));
}

TEST(FingerprintTest, JoinShapeInKey) {
  QueryShape a = EmpShape();
  QueryShape j = EmpShape();
  j.has_join = true;
  j.join_table = "dept";
  j.join_left = "dept_id";
  j.join_right = "id";
  j.join_where = {{"name", CompareOp::kEq, Value("Toy")}};
  EXPECT_NE(FingerprintBase(a), FingerprintBase(j));
  QueryShape j2 = j;
  j2.join_where[0].value = Value("Shoe");
  EXPECT_NE(FingerprintBase(j), FingerprintBase(j2));
}

TEST(FingerprintTest, StringLengthPrefixPreventsCollision) {
  // "a" = "b/1/..." forgeries: length prefixes keep payload bytes from
  // impersonating key structure.
  QueryShape a = EmpShape();
  a.where = {{"name", CompareOp::kEq, Value("ab")}};
  QueryShape b = EmpShape();
  b.where = {{"name", CompareOp::kEq, Value("a")}};
  EXPECT_NE(FingerprintBase(a), FingerprintBase(b));
}

TEST(FingerprintTest, ColumnsCacheableRejectsFkHops) {
  QueryShape s = EmpShape();
  EXPECT_TRUE(ColumnsCacheable(s));
  s.columns.push_back("emp.dept_id.name");  // hop into another relation
  EXPECT_FALSE(ColumnsCacheable(s));
}

// ---- ReuseCache mechanics ---------------------------------------------------

ResultPayload OneRowPayload(int32_t v) {
  ResultPayload p;
  p.columns = {"k"};
  p.rows = {{Value(v)}};
  p.plan = "test";
  return p;
}

Footprint WholeRel(const std::string& rel) {
  Footprint f;
  f.AddAll(rel);
  return f;
}

Footprint RelParts(const std::string& rel, std::vector<uint32_t> pids) {
  Footprint f;
  f.AddPartitions(rel, pids);
  return f;
}

TEST(ReuseCacheTest, FillThenHit) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  EXPECT_EQ(rc.LookupResult("k1"), nullptr);
  rc.FillResult("k1", WholeRel("emp"), OneRowPayload(7));
  auto hit = rc.LookupResult("k1");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->rows.size(), 1u);
  EXPECT_EQ(hit->rows[0][0], Value(7));
  const CacheStats s = rc.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.fills, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ReuseCacheTest, DisabledLookupAndFillAreNoOps) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.SetEnabled(false);
  rc.FillResult("k1", WholeRel("emp"), OneRowPayload(7));
  EXPECT_EQ(rc.LookupResult("k1"), nullptr);
  EXPECT_EQ(rc.Stats().entries, 0u);
  EXPECT_EQ(rc.Stats().fills, 0u);
}

TEST(ReuseCacheTest, DisablingFlushes) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("k1", WholeRel("emp"), OneRowPayload(7));
  EXPECT_EQ(rc.Stats().entries, 1u);
  rc.SetEnabled(false);
  rc.SetEnabled(true);
  EXPECT_EQ(rc.LookupResult("k1"), nullptr);  // re-enabled cold
  EXPECT_EQ(rc.Stats().entries, 0u);
}

TEST(ReuseCacheTest, OversizedEntryIsNotCached) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, /*budget_bytes=*/64);  // below entry overhead
  rc.FillResult("k1", WholeRel("emp"), OneRowPayload(7));
  EXPECT_EQ(rc.Stats().entries, 0u);
  EXPECT_EQ(rc.LookupResult("k1"), nullptr);
}

TEST(ReuseCacheTest, LruEvictionUnderBudget) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("a", WholeRel("emp"), OneRowPayload(1));
  rc.FillResult("b", WholeRel("emp"), OneRowPayload(2));
  rc.FillResult("c", WholeRel("emp"), OneRowPayload(3));
  // Touch "a" so "b" becomes least-recently-used, then shrink the budget to
  // roughly two entries' worth: eviction must take "b" first.
  ASSERT_NE(rc.LookupResult("a"), nullptr);
  const size_t two_entries = rc.Stats().bytes * 2 / 3;
  rc.SetBudgetBytes(two_entries);
  rc.FillResult("d", WholeRel("emp"), OneRowPayload(4));  // triggers eviction
  EXPECT_EQ(rc.LookupResult("b"), nullptr);
  EXPECT_NE(rc.LookupResult("a"), nullptr);
  EXPECT_NE(rc.LookupResult("d"), nullptr);
  EXPECT_GT(rc.Stats().evictions, 0u);
  EXPECT_LE(rc.Stats().bytes, two_entries);
}

TEST(ReuseCacheTest, PartitionPreciseInvalidation) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("p0", RelParts("emp", {0}), OneRowPayload(1));
  rc.FillResult("p2", RelParts("emp", {2}), OneRowPayload(2));

  // A write to partition 1 overlaps neither entry.
  rc.Invalidate(RelParts("emp", {1}));
  EXPECT_NE(rc.LookupResult("p0"), nullptr);
  EXPECT_NE(rc.LookupResult("p2"), nullptr);
  EXPECT_EQ(rc.Stats().invalidations, 0u);

  // A write to partition 0 kills exactly the overlapping entry.
  rc.Invalidate(RelParts("emp", {0}));
  EXPECT_EQ(rc.LookupResult("p0"), nullptr);
  EXPECT_NE(rc.LookupResult("p2"), nullptr);
  EXPECT_EQ(rc.Stats().invalidations, 1u);
}

TEST(ReuseCacheTest, RelationWideWriteKillsPreciseEntries) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("p0", RelParts("emp", {0}), OneRowPayload(1));
  // Empty partition set = a point query that matched nothing; only a
  // relation-wide (structure-X) write can change its (empty) answer.
  rc.FillResult("none", RelParts("emp", {}), OneRowPayload(2));
  rc.Invalidate(RelParts("emp", {0, 1, 2}));
  EXPECT_EQ(rc.LookupResult("p0"), nullptr);
  EXPECT_NE(rc.LookupResult("none"), nullptr);  // no partition overlaps it

  rc.Invalidate(WholeRel("emp"));  // structure-X: sweeps every emp entry
  EXPECT_EQ(rc.LookupResult("none"), nullptr);
}

TEST(ReuseCacheTest, WholeRelationReadsDieOnAnyPartitionWrite) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("scan", WholeRel("emp"), OneRowPayload(1));
  rc.Invalidate(RelParts("emp", {3}));
  EXPECT_EQ(rc.LookupResult("scan"), nullptr);
}

TEST(ReuseCacheTest, InvalidationIsPerRelation) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("e", WholeRel("emp"), OneRowPayload(1));
  rc.FillResult("d", WholeRel("dept"), OneRowPayload(2));
  rc.InvalidateRelation("emp");
  EXPECT_EQ(rc.LookupResult("e"), nullptr);
  EXPECT_NE(rc.LookupResult("d"), nullptr);
}

TEST(ReuseCacheTest, MultiRelationFootprintDiesWithEitherRelation) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  Footprint join;
  join.AddAll("emp");
  join.AddAll("dept");
  rc.FillResult("j", join, OneRowPayload(1));
  rc.Invalidate(RelParts("dept", {0}));
  EXPECT_EQ(rc.LookupResult("j"), nullptr);
}

TEST(ReuseCacheTest, MetricsRegistered) {
  MetricsRegistry metrics;
  ReuseCache rc(&metrics, 1 << 20);
  rc.FillResult("k", WholeRel("emp"), OneRowPayload(1));
  ASSERT_NE(rc.LookupResult("k"), nullptr);
  const std::string text = metrics.RenderPrometheus();
  EXPECT_NE(text.find("mmdb_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("mmdb_cache_bytes"), std::string::npos);
  EXPECT_NE(text.find("mmdb_cache_entries 1"), std::string::npos);
}

// ---- End to end: QueryBuilder -----------------------------------------------

class CacheE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reuse_cache().SetEnabled(true);  // the subject under test, env aside
    db_.CreateTable("dept", {{"name", Type::kString}, {"id", Type::kInt32}});
    db_.CreateTable("emp", {{"name", Type::kString},
                            {"id", Type::kInt32},
                            {"age", Type::kInt32},
                            {"dept_id", Type::kPointer}});
    ASSERT_TRUE(db_.DeclareForeignKey("emp", "dept_id", "dept", "id").ok());
    db_.Insert("dept", {Value("Toy"), Value(459)});
    db_.Insert("dept", {Value("Shoe"), Value(409)});
    db_.Insert("emp", {Value("Dave"), Value(23), Value(24), Value(459)});
    db_.Insert("emp", {Value("Suzan"), Value(12), Value(27), Value(459)});
    db_.Insert("emp", {Value("Al"), Value(51), Value(67), Value(409)});
  }

  QueryResult Young() {
    return db_.Query("emp")
        .Where("age", CompareOp::kLt, 30)
        .Select({"emp.name", "emp.age"})
        .Run();
  }

  Database db_;
};

TEST_F(CacheE2eTest, RepeatQueryHitsCache) {
  QueryResult first = Young();
  EXPECT_EQ(first.plan.find("cache"), std::string::npos) << first.plan;
  QueryResult second = Young();
  // A plain projection reuses the select-stage intermediate (only
  // DISTINCT/ORDERED results get a full-result entry at this layer).
  EXPECT_NE(second.plan.find("cache: base hit"), std::string::npos)
      << second.plan;
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(second.rows.GetValue(i, 0), first.rows.GetValue(i, 0));
    EXPECT_EQ(second.rows.GetValue(i, 1), first.rows.GetValue(i, 1));
  }
  EXPECT_GE(db_.reuse_cache().Stats().hits, 1u);
}

TEST_F(CacheE2eTest, ProjectionVariantsShareBaseIntermediate) {
  (void)Young();  // fills the base (select-stage) entry
  QueryResult names = db_.Query("emp")
                          .Where("age", CompareOp::kLt, 30)
                          .Select({"emp.name"})
                          .Run();
  EXPECT_NE(names.plan.find("cache: base hit"), std::string::npos)
      << names.plan;
  EXPECT_EQ(names.rows.size(), 2u);
}

TEST_F(CacheE2eTest, DmlInvalidatesAndRecomputes) {
  QueryResult before = Young();
  EXPECT_EQ(before.rows.size(), 2u);
  (void)Young();  // now cached
  db_.Insert("emp", {Value("Kid"), Value(99), Value(18), Value(459)});
  QueryResult after = Young();
  EXPECT_EQ(after.plan.find("cache: hit"), std::string::npos) << after.plan;
  EXPECT_EQ(after.rows.size(), 3u);  // the new row is visible, not stale
}

TEST_F(CacheE2eTest, FkHopColumnsAreNeverCached) {
  auto hop = [&] {
    return db_.Query("emp")
        .Where("age", CompareOp::kGt, 60)
        .Select({"emp.name", "emp.dept_id.name"})
        .Run();
  };
  (void)hop();
  QueryResult second = hop();
  // The hop reads dept tuples outside the footprint; no cache annotation.
  EXPECT_EQ(second.plan.find("cache: hit"), std::string::npos) << second.plan;
  ASSERT_EQ(second.rows.size(), 1u);
  EXPECT_EQ(second.rows.GetValue(0, 1), Value("Shoe"));
}

TEST_F(CacheE2eTest, OrderedAndDistinctServeFromFullEntry) {
  auto ordered = [&] {
    return db_.Query("emp")
        .Where("age", CompareOp::kGt, 20)
        .Select({"emp.age"})
        .Distinct()
        .OrderBySelected()
        .Run();
  };
  QueryResult first = ordered();
  QueryResult second = ordered();
  EXPECT_NE(second.plan.find("cache: hit"), std::string::npos) << second.plan;
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(second.rows.GetValue(i, 0), first.rows.GetValue(i, 0));
  }
}

TEST_F(CacheE2eTest, DropTableInvalidates) {
  (void)Young();
  (void)Young();
  ASSERT_TRUE(db_.DropTable("emp").ok());
  db_.CreateTable("emp", {{"name", Type::kString},
                          {"id", Type::kInt32},
                          {"age", Type::kInt32},
                          {"dept_id", Type::kPointer}});
  QueryResult r = db_.Query("emp")
                      .Where("age", CompareOp::kLt, 30)
                      .Select({"emp.name", "emp.age"})
                      .Run();
  EXPECT_EQ(r.plan.find("cache: hit"), std::string::npos) << r.plan;
  EXPECT_EQ(r.rows.size(), 0u);  // fresh empty table, not the cached rows
}

// ---- End to end: QueryService -----------------------------------------------

TEST(CacheServiceTest, ResultCacheHitAndInvalidation) {
  Database db;
  db.reuse_cache().SetEnabled(true);
  db.CreateTable("emp", {{"id", Type::kInt32}, {"age", Type::kInt32}});
  for (int i = 0; i < 50; ++i) db.Insert("emp", {Value(i), Value(20 + i % 50)});

  ServiceOptions opts;
  opts.workers = 1;
  QueryService service(&db, opts);
  Session* s = service.OpenSession();

  SelectSpec sel;
  sel.table = "emp";
  sel.where = {WhereClause{"age", CompareOp::kGt, Value(60)}};
  OpResult first = service.Execute(s, sel);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  OpResult second = service.Execute(s, sel);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.plan.find("cache: hit"), std::string::npos) << second.plan;
  ASSERT_EQ(second.rows.size(), first.rows.size());

  // Transactional DML through the service invalidates before it acks.
  OpResult ins =
      service.Execute(s, InsertSpec{"emp", {Value(100), Value(70)}});
  ASSERT_TRUE(ins.ok()) << ins.status.ToString();
  OpResult third = service.Execute(s, sel);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.rows.size(), first.rows.size() + 1);
  service.CloseSession(s);
}

TEST(CacheServiceTest, AnalyzeAnnotatesHits) {
  Database db;
  db.reuse_cache().SetEnabled(true);
  db.CreateTable("emp", {{"id", Type::kInt32}, {"age", Type::kInt32}});
  db.Insert("emp", {Value(1), Value(30)});

  ServiceOptions opts;
  opts.workers = 1;
  QueryService service(&db, opts);
  Session* s = service.OpenSession();

  SelectSpec sel;
  sel.table = "emp";
  sel.where = {WhereClause{"age", CompareOp::kEq, Value(30)}};
  sel.analyze = true;
  OpResult first = service.Execute(s, sel);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.analyze.find("cache hit"), std::string::npos);
  OpResult second = service.Execute(s, sel);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.analyze.find("cache hit"), std::string::npos)
      << second.analyze;
  service.CloseSession(s);
}

// ---- Shell ------------------------------------------------------------------

TEST(CacheShellTest, CacheCommand) {
  Database db;
  db.reuse_cache().SetEnabled(true);
  CommandShell shell(&db);
  EXPECT_EQ(shell.Execute("CREATE TABLE t (id INT, v INT);"),
            "ok: table t (2 fields)");
  EXPECT_EQ(shell.Execute("INSERT INTO t VALUES (1, 10);"), "ok: 1 row");

  std::string stats = shell.Execute("CACHE STATS");
  EXPECT_NE(stats.find("cache: on"), std::string::npos) << stats;

  // Two identical selects: the second one hits.
  (void)shell.Execute("SELECT t.v FROM t WHERE id = 1;");
  (void)shell.Execute("SELECT t.v FROM t WHERE id = 1;");
  stats = shell.Execute("CACHE STATS");
  EXPECT_NE(stats.find("hits: 1"), std::string::npos) << stats;

  EXPECT_EQ(shell.Execute("CACHE OFF"), "ok: cache off");
  stats = shell.Execute("CACHE STATS");
  EXPECT_NE(stats.find("cache: off"), std::string::npos) << stats;
  EXPECT_NE(stats.find("entries: 0"), std::string::npos) << stats;  // flushed

  EXPECT_EQ(shell.Execute("CACHE ON"), "ok: cache on");
  EXPECT_NE(shell.Execute("CACHE SIDEWAYS").find("error:"), std::string::npos);
}

TEST(CacheShellTest, ExplainAnalyzeShowsHit) {
  Database db;
  db.reuse_cache().SetEnabled(true);
  CommandShell shell(&db);
  (void)shell.Execute("CREATE TABLE t (id INT, v INT);");
  (void)shell.Execute("INSERT INTO t VALUES (1, 10);");
  (void)shell.Execute("EXPLAIN ANALYZE SELECT t.v FROM t WHERE id = 1;");
  const std::string second =
      shell.Execute("EXPLAIN ANALYZE SELECT t.v FROM t WHERE id = 1;");
  EXPECT_NE(second.find("cache"), std::string::npos) << second;
}

}  // namespace
}  // namespace mmdb
