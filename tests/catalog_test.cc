#include <gtest/gtest.h>

#include "src/storage/catalog.h"

namespace mmdb {
namespace {

Schema OneInt() { return Schema({{"k", Type::kInt32}}); }

TEST(CatalogTest, CreateAndGet) {
  Catalog catalog;
  Relation* r = catalog.CreateRelation("emp", OneInt());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(catalog.Get("emp"), r);
  EXPECT_EQ(catalog.Get("missing"), nullptr);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(CatalogTest, NameCollisionRejected) {
  Catalog catalog;
  EXPECT_NE(catalog.CreateRelation("r", OneInt()), nullptr);
  EXPECT_EQ(catalog.CreateRelation("r", OneInt()), nullptr);
}

TEST(CatalogTest, DropRemoves) {
  Catalog catalog;
  catalog.CreateRelation("r", OneInt());
  EXPECT_TRUE(catalog.Drop("r").ok());
  EXPECT_EQ(catalog.Get("r"), nullptr);
  EXPECT_EQ(catalog.Drop("r").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DropBlockedByInboundForeignKey) {
  Catalog catalog;
  Relation* dept = catalog.CreateRelation("dept", OneInt());
  Relation* emp = catalog.CreateRelation(
      "emp", Schema({{"dept", Type::kPointer}}));
  ASSERT_TRUE(emp->DeclareForeignKey(0, dept, 0).ok());
  EXPECT_EQ(catalog.Drop("dept").code(), StatusCode::kFailedPrecondition);
  // Dropping the referencing relation first unblocks the target.
  EXPECT_TRUE(catalog.Drop("emp").ok());
  EXPECT_TRUE(catalog.Drop("dept").ok());
}

TEST(CatalogTest, ListIsSorted) {
  Catalog catalog;
  catalog.CreateRelation("zeta", OneInt());
  catalog.CreateRelation("alpha", OneInt());
  catalog.CreateRelation("mid", OneInt());
  EXPECT_EQ(catalog.List(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace mmdb
