// The paper validated its timings by counting comparisons, data movement,
// and hash-function calls (Section 3.1), and Section 3.3.4 states the cost
// formulas directly.  These tests pin our implementations to those
// formulas:
//
//   Nested Loops:  |R1| * |R2| comparisons;
//   Tree Merge:    ~(|R1| + 2*|R2|) comparisons for key joins;
//   Hash Join:     |R2| build hashes + |R1| probe hashes, fixed-cost probes;
//   Tree Join:     ~|R1| * log2(|R2|) comparisons;
//   Sort Merge:    O(n log n) comparisons, dominated by the two sorts.
//
// They only run when MMDB_COUNTERS is compiled in (the default).

#include <gtest/gtest.h>

#include <cmath>

#include "src/exec/join.h"
#include "src/exec/project.h"
#include "src/util/counters.h"
#include "tests/test_util.h"

#if defined(MMDB_COUNTERS)

namespace mmdb {
namespace {

using testutil::AttachKeyIndex;

class CostModelTest : public ::testing::Test {
 protected:
  static constexpr size_t kN = 2000;

  CostModelTest() {
    outer_ = testutil::IntRelation("outer", testutil::ShuffledKeys(kN, 1));
    inner_ = testutil::IntRelation("inner", testutil::ShuffledKeys(kN, 2));
    AttachKeyIndex(outer_.get(), IndexKind::kArray);
    AttachKeyIndex(inner_.get(), IndexKind::kArray);
    outer_tree_ = static_cast<const OrderedIndex*>(
        AttachKeyIndex(outer_.get(), IndexKind::kTTree));
    inner_tree_ = static_cast<const OrderedIndex*>(
        AttachKeyIndex(inner_.get(), IndexKind::kTTree));
    spec_ = JoinSpec{outer_.get(), 0, inner_.get(), 0};
  }

  std::unique_ptr<Relation> outer_, inner_;
  const OrderedIndex* outer_tree_;
  const OrderedIndex* inner_tree_;
  JoinSpec spec_;
};

TEST_F(CostModelTest, NestedLoopsIsQuadratic) {
  counters::Reset();
  TempList out = NestedLoopsJoin(spec_);
  EXPECT_EQ(out.size(), kN);  // identical key sets
  // Exactly one comparison per (outer, inner) pair.
  EXPECT_EQ(counters::Snapshot().comparisons, kN * kN);
}

TEST_F(CostModelTest, TreeMergeIsLinear) {
  counters::Reset();
  TempList out = TreeMergeJoin(spec_, *outer_tree_, *inner_tree_);
  EXPECT_EQ(out.size(), kN);
  // Paper: approximately |R1| + 2*|R2| comparisons for a key join.
  const uint64_t cmp = counters::Snapshot().comparisons;
  EXPECT_LE(cmp, 4 * kN);
  EXPECT_GE(cmp, 2 * kN);
}

TEST_F(CostModelTest, HashJoinHashesEachTupleOnce) {
  counters::Reset();
  TempList out = HashJoin(spec_);
  EXPECT_EQ(out.size(), kN);
  // |R2| build hashes + |R1| probe hashes (one per tuple each).
  EXPECT_EQ(counters::Snapshot().hash_calls, 2 * kN);
  // Probe comparisons are fixed-cost: ~chain length per probe, far below
  // any log factor.
  EXPECT_LE(counters::Snapshot().comparisons, 4 * kN);
}

TEST_F(CostModelTest, TreeJoinIsLogarithmicPerProbe) {
  counters::Reset();
  TempList out = TreeJoin(spec_, *inner_tree_);
  EXPECT_EQ(out.size(), kN);
  const double cmp_per_probe =
      static_cast<double>(counters::Snapshot().comparisons) / kN;
  const double log_n = std::log2(static_cast<double>(kN));
  // Binary tree descent + in-node binary search: Theta(log |R2|).
  EXPECT_GE(cmp_per_probe, 0.5 * log_n);
  EXPECT_LE(cmp_per_probe, 3.0 * log_n);
}

TEST_F(CostModelTest, SortMergeIsNLogN) {
  counters::Reset();
  TempList out = SortMergeJoin(spec_);
  EXPECT_EQ(out.size(), kN);
  const double cmp = static_cast<double>(counters::Snapshot().comparisons);
  const double n_log_n = 2.0 * kN * std::log2(static_cast<double>(kN));
  // Two sorts plus a linear merge; quicksort constants are near 1.4.
  EXPECT_GE(cmp, 0.8 * n_log_n);
  EXPECT_LE(cmp, 3.0 * n_log_n);
}

TEST_F(CostModelTest, TreeJoinUnsuccessfulProbesAreCheaper) {
  // Section 3.3.4: "when the percentage of matching values is low, most of
  // the searches are unsuccessful and the total cost is much lower".
  auto strangers = testutil::IntRelation("s", testutil::ShuffledKeys(kN, 3));
  // Shift keys out of the inner's range so no probe matches.
  auto miss = testutil::IntRelation("m", [] {
    std::vector<int32_t> keys;
    for (size_t i = 0; i < kN; ++i) {
      keys.push_back(static_cast<int32_t>(i + 10 * kN));
    }
    return keys;
  }());
  AttachKeyIndex(miss.get(), IndexKind::kArray);

  counters::Reset();
  TreeJoin(spec_, *inner_tree_);  // 100% matching
  const uint64_t hit_cmp = counters::Snapshot().comparisons;

  counters::Reset();
  JoinSpec miss_spec{miss.get(), 0, inner_.get(), 0};
  TempList empty = TreeJoin(miss_spec, *inner_tree_);
  const uint64_t miss_cmp = counters::Snapshot().comparisons;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_LT(miss_cmp, hit_cmp);
}

TEST_F(CostModelTest, ProjectionHashIsLinearSortIsNot) {
  TempList in(ResultDescriptor({outer_.get()}));
  in.mutable_descriptor()->AddColumn(0, uint16_t{0});
  outer_->ForEachTuple([&](TupleRef t) { in.Append1(t); });

  counters::Reset();
  ProjectHash(in);
  const uint64_t hash_cmp = counters::Snapshot().comparisons;
  counters::Reset();
  ProjectSortScan(in);
  const uint64_t sort_cmp = counters::Snapshot().comparisons;
  // Sorting costs a log factor the hash method never pays.
  EXPECT_GT(sort_cmp, 3 * hash_cmp);
}

TEST_F(CostModelTest, PrecomputedJoinDoesNoComparisons) {
  // "Intuitively, it would beat each of the join methods in every case,
  // because the joining tuples have already been paired."
  Schema emp_schema({{"dept", Type::kPointer}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, inner_.get(), 0).ok());
  auto ops = std::make_shared<SelfPointerKeyOps>();
  auto index = CreateIndex(IndexKind::kTTree, std::move(ops), IndexConfig());
  emp.AttachIndex(std::move(index));
  for (int32_t k = 0; k < 100; ++k) emp.Insert({Value(k)});

  counters::Reset();
  TempList out = PrecomputedJoin(emp, 0);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(counters::Snapshot().comparisons, 0u);
  EXPECT_EQ(counters::Snapshot().hash_calls, 0u);
}

}  // namespace
}  // namespace mmdb

#endif  // MMDB_COUNTERS
