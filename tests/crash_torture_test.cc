// Kill-and-recover torture harness.  The parent re-executes this binary as
// `--torture-child <dir> <base> <threads>`: a child that runs concurrent
// multi-row transactions against a sync-durable database rooted at <dir>,
// recording every attempted and acknowledged group in an fsync'd oracle
// file.  The parent SIGKILLs the child at a randomized point, recovers the
// directory into a fresh database, and checks the durability contract:
//
//   1. every acknowledged group is fully present after recovery,
//   2. every recovered row belongs to a group that was at least attempted,
//   3. groups are atomic — no group is ever partially present.
//
// Environment knobs: MMDB_TORTURE_ITERS (kill points per seed, default 60)
// and MMDB_TORTURE_SEED (default 42).  CI runs a fixed seed matrix plus one
// randomized seed that is echoed for reproduction.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/durability.h"
#include "src/storage/tuple.h"
#include "src/util/env.h"

namespace {
const char* g_self = nullptr;  // argv[0]: the binary to re-exec as a child
}

namespace mmdb {
namespace {

constexpr int32_t kGroupRows = 3;          // rows per transaction
constexpr int32_t kThreadStride = 999999;  // id space per thread; % 3 == 0

void MakeTortureTable(Database* db) {
  Relation::Options options;
  options.partition.slot_capacity = 64;  // force partition growth under load
  db->CreateTable("t", {{"id", Type::kInt32}, {"v", Type::kInt32}}, options);
}

// ---- Child -----------------------------------------------------------------

// Appends one line to the oracle and fsyncs it; exits hard on error so the
// parent sees a non-signal death instead of a silently broken oracle.
void OracleLine(int fd, char tag, int32_t group_base) {
  char buf[64];
  int n = snprintf(buf, sizeof(buf), "%c %d\n", tag, group_base);
  if (write(fd, buf, static_cast<size_t>(n)) != n || fsync(fd) != 0) {
    _exit(3);
  }
}

int TortureChild(const std::string& dir, int32_t base, int threads) {
  auto db = std::make_unique<Database>();
  Env* env = Env::Posix();
  const bool resuming = env->FileExists(dir + "/schema.mmdb");
  if (resuming) {
    if (!db->Recover(dir, env, nullptr).ok()) _exit(4);
  } else {
    MakeTortureTable(db.get());
  }
  DurabilityOptions options;
  options.mode = DurabilityMode::kSync;
  options.dir = dir;
  options.flush_interval = std::chrono::milliseconds(1);
  if (!db->EnableDurability(std::move(options)).ok()) _exit(5);

  int oracle = open((dir + "/oracle.txt").c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (oracle < 0) _exit(6);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const int32_t block = base + t * kThreadStride;
      for (int32_t g = 0;; ++g) {
        const int32_t group_base = block + g * kGroupRows;
        // The try line must be durable in the oracle before Commit can
        // place anything in the stable log buffer.
        OracleLine(oracle, 't', group_base);
        std::unique_ptr<Transaction> txn = db->Begin();
        bool ok = true;
        for (int32_t j = 0; j < kGroupRows; ++j) {
          ok = ok && txn->Insert("t", {Value(group_base + j),
                                       Value(group_base)}).ok();
        }
        if (!ok) {
          txn->Abort();
          _exit(7);
        }
        if (!txn->Commit().ok()) _exit(8);
        if (!db->WaitDurable(txn->commit_lsn()).ok()) _exit(9);
        OracleLine(oracle, 'a', group_base);
        // Thread 0 periodically checkpoints so kills race WAL rotation
        // and checkpoint file replacement too.
        if (t == 0 && g % 32 == 31 && !db->CheckpointNow().ok()) _exit(10);
      }
    });
  }
  for (auto& w : workers) w.join();  // unreachable: SIGKILL ends the child
  return 0;
}

// Auto-commit (fast-path) DML child: no explicit transactions — every
// mutation goes through Database::Insert/Update/Delete, which run as
// single-op mini-transactions and only return once the commit record is
// durable.  Oracle tags are per-row: i/I = insert tried/acked, u/U = update
// tried/acked, d/D = delete tried/acked.  An earlier revision of the fast
// path skipped the WAL entirely, so every kill here lost all acked rows.
int TortureFastPathChild(const std::string& dir, int32_t base, int threads) {
  auto db = std::make_unique<Database>();
  Env* env = Env::Posix();
  if (env->FileExists(dir + "/schema.mmdb")) {
    if (!db->Recover(dir, env, nullptr).ok()) _exit(4);
  } else {
    MakeTortureTable(db.get());
  }
  DurabilityOptions options;
  options.mode = DurabilityMode::kSync;
  options.dir = dir;
  options.flush_interval = std::chrono::milliseconds(1);
  if (!db->EnableDurability(std::move(options)).ok()) _exit(5);

  int oracle = open((dir + "/oracle.txt").c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (oracle < 0) _exit(6);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const int32_t block = base + t * kThreadStride;
      for (int32_t k = 0;; ++k) {
        const int32_t id = block + k;
        OracleLine(oracle, 'i', id);
        TupleRef ref = nullptr;
        // A lock timeout aborts the mini-transaction (Insert returns
        // nullptr); retrying keeps the oracle contract — 'i' was written,
        // the ack only follows an actual success.
        for (int attempt = 0; ref == nullptr && attempt < 100; ++attempt) {
          ref = db->Insert("t", {Value(id), Value(id)});
        }
        if (ref == nullptr) _exit(7);
        OracleLine(oracle, 'I', id);
        if (id % 3 == 1) {
          OracleLine(oracle, 'u', id);
          Status s = Status::Aborted("");
          for (int attempt = 0; !s.ok() && attempt < 100; ++attempt) {
            s = db->Update("t", ref, "v", Value(-id - 1));
          }
          if (!s.ok()) _exit(8);
          OracleLine(oracle, 'U', id);
        } else if (id % 3 == 2) {
          OracleLine(oracle, 'd', id);
          Status s = Status::Aborted("");
          for (int attempt = 0; !s.ok() && attempt < 100; ++attempt) {
            s = db->Delete("t", ref);
          }
          if (!s.ok()) _exit(9);
          OracleLine(oracle, 'D', id);
        }
        if (t == 0 && k % 64 == 63 && !db->CheckpointNow().ok()) _exit(10);
      }
    });
  }
  for (auto& w : workers) w.join();  // unreachable: SIGKILL ends the child
  return 0;
}

// ---- Parent ----------------------------------------------------------------

struct Oracle {
  std::set<int32_t> tried;  // group bases
  std::set<int32_t> acked;
};

Oracle ReadOracle(const std::string& path) {
  Oracle o;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    // Tolerate a torn final line (killed mid-write): require the full
    // "<tag> <number>" shape.
    std::istringstream ls(line);
    char tag;
    int32_t group_base;
    if (!(ls >> tag >> group_base)) continue;
    if (tag == 't') o.tried.insert(group_base);
    if (tag == 'a') o.acked.insert(group_base);
  }
  return o;
}

std::map<int32_t, int> PresentGroups(Database* db) {
  std::map<int32_t, int> rows_per_group;  // group base -> live row count
  Relation* rel = db->GetTable("t");
  if (rel == nullptr) return rows_per_group;
  const size_t off = rel->schema().offset(0);
  for (const auto& p : rel->partitions()) {
    p->ForEachLive([&](TupleRef t) {
      int32_t id = tuple::GetInt32(t, off);
      ++rows_per_group[id - id % kGroupRows];
    });
  }
  return rows_per_group;
}

/// Runs one child, kills it after `delay_us`, recovers, and verifies the
/// acked-writes / atomicity invariants.  `*acked_out` gets the number of
/// acknowledged groups so the driver can report coverage.
void KillAndVerify(const std::string& dir, int32_t base, int threads,
                   uint64_t delay_us, const std::string& what,
                   size_t* acked_out) {
  *acked_out = 0;
  pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    char base_str[16], threads_str[16];
    snprintf(base_str, sizeof(base_str), "%d", base);
    snprintf(threads_str, sizeof(threads_str), "%d", threads);
    execl(g_self, g_self, "--torture-child", dir.c_str(), base_str,
          threads_str, static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  // Any death other than our SIGKILL means the child hit an internal
  // error (its _exit codes) or crashed on its own — both are failures.
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << what << ": child died with status " << status;

  Env* env = Env::Posix();
  Oracle oracle = ReadOracle(dir + "/oracle.txt");
  if (!env->FileExists(dir + "/schema.mmdb")) {
    // Killed before the initial checkpoint finished: nothing durable may
    // have been acknowledged.
    EXPECT_TRUE(oracle.acked.empty()) << what << ": acks without a directory";
    return;
  }

  Database db;
  RecoveryManager::Progress progress;
  Status s = db.Recover(dir, env, &progress);
  ASSERT_TRUE(s.ok()) << what << ": recover failed: " << s.ToString();

  std::map<int32_t, int> present = PresentGroups(&db);
  for (int32_t g : oracle.acked) {
    EXPECT_EQ(present.count(g) != 0 ? present[g] : 0, kGroupRows)
        << what << ": acked group " << g << " lost or partial";
  }
  for (const auto& [g, n] : present) {
    EXPECT_EQ(n, kGroupRows) << what << ": group " << g << " is partial";
    EXPECT_EQ(oracle.tried.count(g), 1u)
        << what << ": group " << g << " present but never attempted";
  }
  *acked_out = oracle.acked.size();
}

struct FastPathOracle {
  std::set<int32_t> tried_insert, acked_insert;
  std::set<int32_t> tried_update, acked_update;
  std::set<int32_t> tried_delete, acked_delete;
};

FastPathOracle ReadFastPathOracle(const std::string& path) {
  FastPathOracle o;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    char tag;
    int32_t id;
    if (!(ls >> tag >> id)) continue;  // torn final line
    switch (tag) {
      case 'i': o.tried_insert.insert(id); break;
      case 'I': o.acked_insert.insert(id); break;
      case 'u': o.tried_update.insert(id); break;
      case 'U': o.acked_update.insert(id); break;
      case 'd': o.tried_delete.insert(id); break;
      case 'D': o.acked_delete.insert(id); break;
      default: break;
    }
  }
  return o;
}

/// Fast-path variant of KillAndVerify: the child's mutations are
/// auto-commit Database::Insert/Update/Delete calls.  The contract per id
/// (row value starts at id; an update rewrites it to -id-1):
///   * an acked delete means the row is gone;
///   * an acked insert means the row is present — unless a later delete
///     was at least tried (it may have committed without its ack);
///   * an acked update means the value is -id-1 (same later-delete caveat);
///   * a tried-but-unacked update leaves either value; anything else or a
///     row whose insert was never tried is corruption.
void FastPathKillAndVerify(const std::string& dir, int32_t base, int threads,
                           uint64_t delay_us, const std::string& what,
                           size_t* acked_out) {
  *acked_out = 0;
  pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    char base_str[16], threads_str[16];
    snprintf(base_str, sizeof(base_str), "%d", base);
    snprintf(threads_str, sizeof(threads_str), "%d", threads);
    execl(g_self, g_self, "--torture-fastpath-child", dir.c_str(), base_str,
          threads_str, static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << what << ": child died with status " << status;

  Env* env = Env::Posix();
  FastPathOracle oracle = ReadFastPathOracle(dir + "/oracle.txt");
  if (!env->FileExists(dir + "/schema.mmdb")) {
    EXPECT_TRUE(oracle.acked_insert.empty())
        << what << ": acks without a directory";
    return;
  }

  Database db;
  Status s = db.Recover(dir, env, nullptr);
  ASSERT_TRUE(s.ok()) << what << ": recover failed: " << s.ToString();

  std::map<int32_t, int32_t> present;  // id -> v
  Relation* rel = db.GetTable("t");
  ASSERT_NE(rel, nullptr) << what;
  const size_t id_off = rel->schema().offset(0);
  const size_t v_off = rel->schema().offset(1);
  for (const auto& p : rel->partitions()) {
    p->ForEachLive([&](TupleRef t) {
      present[tuple::GetInt32(t, id_off)] = tuple::GetInt32(t, v_off);
    });
  }

  for (int32_t id : oracle.acked_insert) {
    if (oracle.tried_delete.count(id) != 0) continue;  // may be gone
    ASSERT_EQ(present.count(id), 1u)
        << what << ": acked insert " << id << " lost";
    const int32_t v = present[id];
    if (oracle.acked_update.count(id) != 0) {
      EXPECT_EQ(v, -id - 1) << what << ": acked update " << id << " lost";
    } else if (oracle.tried_update.count(id) != 0) {
      EXPECT_TRUE(v == id || v == -id - 1)
          << what << ": id " << id << " has foreign value " << v;
    } else {
      EXPECT_EQ(v, id) << what << ": id " << id << " has foreign value " << v;
    }
  }
  for (int32_t id : oracle.acked_delete) {
    EXPECT_EQ(present.count(id), 0u)
        << what << ": acked delete " << id << " resurrected";
  }
  for (const auto& [id, v] : present) {
    EXPECT_EQ(oracle.tried_insert.count(id), 1u)
        << what << ": id " << id << " present but never attempted";
    EXPECT_TRUE(v == id || (v == -id - 1 && oracle.tried_update.count(id)))
        << what << ": id " << id << " has foreign value " << v;
  }
  *acked_out =
      oracle.acked_insert.size() + oracle.acked_update.size() +
      oracle.acked_delete.size();
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = getenv(name);
  return (v != nullptr && *v != '\0') ? strtoull(v, nullptr, 10) : fallback;
}

TEST(CrashTortureTest, KillAndRecoverNeverLosesAckedGroups) {
  const uint64_t iters = EnvOr("MMDB_TORTURE_ITERS", 60);
  const uint64_t seed = EnvOr("MMDB_TORTURE_SEED", 42);
  std::mt19937_64 rng(seed);
  std::string root = std::string(::testing::TempDir()) + "mmdb_tortureXXXXXX";
  ASSERT_NE(mkdtemp(root.data()), nullptr);

  size_t total_acked = 0;
  for (uint64_t i = 0; i < iters; ++i) {
    const std::string dir = root + "/it" + std::to_string(i);
    // Early kill points land in startup / the initial checkpoint; later
    // ones land in steady-state commits and periodic checkpoints.
    const uint64_t delay_us = 50 + rng() % 60000;
    const std::string what =
        "seed=" + std::to_string(seed) + " iter=" + std::to_string(i) +
        " delay_us=" + std::to_string(delay_us);
    size_t acked = 0;
    KillAndVerify(dir, /*base=*/0, /*threads=*/3, delay_us, what, &acked);
    if (::testing::Test::HasFatalFailure()) break;
    total_acked += acked;
    std::filesystem::remove_all(dir);
  }
  // The sweep must include real commits, not only startup kills.
  EXPECT_GT(total_acked, 0u) << "no iteration ever acknowledged a write";
  std::filesystem::remove_all(root);
}

// The fast-path scenario: every mutation is an auto-commit call, so this
// directly proves acked ⊆ recovered for the path that used to bypass the
// WAL entirely.
TEST(CrashTortureTest, FastPathDmlNeverLosesAckedWrites) {
  const uint64_t iters = EnvOr("MMDB_TORTURE_ITERS", 60) / 2 + 1;
  const uint64_t seed = EnvOr("MMDB_TORTURE_SEED", 42) + 2;
  std::mt19937_64 rng(seed);
  std::string root = std::string(::testing::TempDir()) + "mmdb_tortureXXXXXX";
  ASSERT_NE(mkdtemp(root.data()), nullptr);

  size_t total_acked = 0;
  for (uint64_t i = 0; i < iters; ++i) {
    const std::string dir = root + "/it" + std::to_string(i);
    const uint64_t delay_us = 50 + rng() % 60000;
    const std::string what =
        "fastpath seed=" + std::to_string(seed) + " iter=" + std::to_string(i) +
        " delay_us=" + std::to_string(delay_us);
    size_t acked = 0;
    FastPathKillAndVerify(dir, /*base=*/0, /*threads=*/3, delay_us, what,
                          &acked);
    if (::testing::Test::HasFatalFailure()) break;
    total_acked += acked;
    std::filesystem::remove_all(dir);
  }
  EXPECT_GT(total_acked, 0u) << "no iteration ever acknowledged a write";
  std::filesystem::remove_all(root);
}

TEST(CrashTortureTest, SurvivesRepeatedKillsOnOneDirectory) {
  const uint64_t seed = EnvOr("MMDB_TORTURE_SEED", 42) + 1;
  std::mt19937_64 rng(seed);
  std::string root = std::string(::testing::TempDir()) + "mmdb_tortureXXXXXX";
  ASSERT_NE(mkdtemp(root.data()), nullptr);
  const std::string dir = root + "/db";

  // Rounds reuse the directory: each child recovers its predecessor's
  // state, resumes in a fresh id block, and is killed again.
  for (int round = 0; round < 5; ++round) {
    const uint64_t delay_us = 2000 + rng() % 50000;
    const std::string what = "round=" + std::to_string(round) +
                             " delay_us=" + std::to_string(delay_us);
    size_t acked = 0;
    KillAndVerify(dir, /*base=*/round * 10 * kThreadStride, /*threads=*/2,
                  delay_us, what, &acked);
    if (::testing::Test::HasFatalFailure()) break;
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  if (argc >= 5 && strcmp(argv[1], "--torture-child") == 0) {
    return mmdb::TortureChild(argv[2], atoi(argv[3]), atoi(argv[4]));
  }
  if (argc >= 5 && strcmp(argv[1], "--torture-fastpath-child") == 0) {
    return mmdb::TortureFastPathChild(argv[2], atoi(argv[3]), atoi(argv[4]));
  }
  g_self = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
