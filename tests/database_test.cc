// Database facade: DDL, DML, durability cycle, crash simulation.

#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace {

TEST(DatabaseTest, CreateTableAddsDefaultPrimaryIndex) {
  Database db;
  Relation* rel = db.CreateTable("t", {{"id", Type::kInt32}});
  ASSERT_NE(rel, nullptr);
  ASSERT_NE(rel->primary_index(), nullptr);
  EXPECT_EQ(rel->primary_index()->kind(), IndexKind::kTTree);
  EXPECT_EQ(db.CreateTable("t", {{"id", Type::kInt32}}), nullptr);  // dup
}

TEST(DatabaseTest, CreateIndexVariants) {
  Database db;
  db.CreateTable("t", {{"a", Type::kInt32}, {"b", Type::kInt32}});
  EXPECT_NE(db.CreateIndex("t", "b", IndexKind::kModifiedLinearHash), nullptr);
  EXPECT_EQ(db.CreateIndex("t", "zz", IndexKind::kTTree), nullptr);
  EXPECT_EQ(db.CreateIndex("nope", "a", IndexKind::kTTree), nullptr);
  // Composite ordered index OK; composite hash rejected.
  EXPECT_NE(db.CreateCompositeIndex("t", {"a", "b"}, IndexKind::kTTree),
            nullptr);
  EXPECT_EQ(db.CreateCompositeIndex("t", {"a", "b"},
                                    IndexKind::kModifiedLinearHash),
            nullptr);
}

TEST(DatabaseTest, InsertDeleteUpdate) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}, {"v", Type::kInt32}});
  TupleRef t = db.Insert("t", {Value(1), Value(10)});
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(db.Update("t", t, "v", Value(20)).ok());
  EXPECT_EQ(tuple::GetInt32(t, db.GetTable("t")->schema().offset(1)), 20);
  ASSERT_TRUE(db.Delete("t", t).ok());
  EXPECT_EQ(db.GetTable("t")->cardinality(), 0u);
  EXPECT_EQ(db.Insert("missing", {Value(1)}), nullptr);
  EXPECT_FALSE(db.Update("t", t, "zz", Value(1)).ok());
}

TEST(DatabaseTest, CompositeIndexOrdersLexicographically) {
  Database db;
  db.CreateTable("t", {{"a", Type::kInt32}, {"b", Type::kInt32}});
  auto* index = static_cast<OrderedIndex*>(
      db.CreateCompositeIndex("t", {"a", "b"}, IndexKind::kTTree));
  ASSERT_NE(index, nullptr);
  db.Insert("t", {Value(1), Value(9)});
  db.Insert("t", {Value(1), Value(2)});
  db.Insert("t", {Value(0), Value(5)});
  std::vector<std::pair<int32_t, int32_t>> seen;
  const Schema& s = db.GetTable("t")->schema();
  index->ScanAll([&](TupleRef t) {
    seen.emplace_back(tuple::GetInt32(t, s.offset(0)),
                      tuple::GetInt32(t, s.offset(1)));
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::pair<int32_t, int32_t>>{
                      {0, 5}, {1, 2}, {1, 9}}));
}

TEST(DatabaseTest, TransactionsThroughFacade) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}});
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Insert("t", {Value(1)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(db.GetTable("t")->cardinality(), 1u);
  EXPECT_EQ(db.RunLogDevice(), 1u);  // record reaches the disk copy
  EXPECT_NE(db.disk_image().ReadPartition("t", 0), nullptr);
}

TEST(DatabaseTest, CrashRecoveryRoundTrip) {
  Database db;
  db.CreateTable("dept", {{"name", Type::kString}, {"id", Type::kInt32}});
  db.CreateTable("emp", {{"name", Type::kString},
                         {"age", Type::kInt32},
                         {"dept_id", Type::kPointer}});
  db.CreateIndex("emp", "age", IndexKind::kTTree);
  ASSERT_TRUE(db.DeclareForeignKey("emp", "dept_id", "dept", "id").ok());

  db.Insert("dept", {Value("Toy"), Value(459)});
  db.Insert("dept", {Value("Shoe"), Value(409)});
  db.Insert("emp", {Value("Al"), Value(67), Value(409)});
  db.Checkpoint();

  // Post-checkpoint transactional work, pumped but not propagated.
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Insert("emp", {Value("Bo"), Value(30), Value(459)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  db.log_device().Pump();

  RecoveryManager::Progress progress;
  ASSERT_TRUE(db.SimulateCrashAndRecover({"emp"}, &progress).ok());
  EXPECT_EQ(progress.tuples_loaded, 4u);
  // Four records: the auto-commit path logs its inserts too (three
  // pre-checkpoint ones whose redo is idempotent against the checkpoint
  // image) plus the post-checkpoint transactional insert.
  EXPECT_EQ(progress.log_records_merged, 4u);
  EXPECT_EQ(progress.pointers_resolved, 2u);

  // Everything is back, including the FK pointers and secondary index.
  QueryResult r = db.Query("emp")
                      .Where("age", CompareOp::kGt, 50)
                      .Select({"emp.name", "emp.dept_id.name"})
                      .Run();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows.GetValue(0, 0), Value("Al"));
  EXPECT_EQ(r.rows.GetValue(0, 1), Value("Shoe"));
  QueryResult r2 = db.Query("emp")
                       .Where("age", CompareOp::kEq, 30)
                       .Select({"emp.dept_id.name"})
                       .Run();
  ASSERT_EQ(r2.rows.size(), 1u);
  EXPECT_EQ(r2.rows.GetValue(0, 0), Value("Toy"));
}

TEST(DatabaseTest, AbortedWorkDoesNotSurviveCrash) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}});
  db.Insert("t", {Value(1)});
  db.Checkpoint();
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Insert("t", {Value(2)}).ok());
  txn->Abort();
  db.log_device().Pump();
  ASSERT_TRUE(db.SimulateCrashAndRecover().ok());
  EXPECT_EQ(db.GetTable("t")->cardinality(), 1u);
  EXPECT_EQ(db.GetTable("t")->primary_index()->Find(Value(2)), nullptr);
}

TEST(DatabaseTest, DropTableForgetsDdl) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}});
  db.Insert("t", {Value(1)});
  db.Checkpoint();
  ASSERT_TRUE(db.DropTable("t").ok());
  EXPECT_FALSE(db.DropTable("t").ok());
  ASSERT_TRUE(db.SimulateCrashAndRecover().ok());
  EXPECT_EQ(db.GetTable("t"), nullptr);  // dropped tables stay dropped
}

TEST(DatabaseTest, SnapshotRoundTripAcrossDatabases) {
  const std::string path = ::testing::TempDir() + "/mmdb_snapshot";
  {
    Database db;
    db.CreateTable("dept", {{"name", Type::kString}, {"id", Type::kInt32}});
    db.CreateTable("emp", {{"name", Type::kString},
                           {"age", Type::kInt32},
                           {"dept_id", Type::kPointer}});
    db.CreateIndex("emp", "age", IndexKind::kTTree);
    ASSERT_TRUE(db.DeclareForeignKey("emp", "dept_id", "dept", "id").ok());
    db.Insert("dept", {Value("Toy"), Value(459)});
    db.Insert("emp", {Value("Dave"), Value(24), Value(459)});
    ASSERT_TRUE(db.SaveSnapshot(path).ok());
  }
  // A brand-new Database restores schema, data, and foreign-key pointers.
  Database restored;
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  ASSERT_NE(restored.GetTable("emp"), nullptr);
  EXPECT_EQ(restored.GetTable("emp")->cardinality(), 1u);
  QueryResult r = restored.Query("emp")
                      .Where("age", CompareOp::kEq, 24)
                      .Select({"emp.name", "emp.dept_id.name"})
                      .Run();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows.GetValue(0, 0), Value("Dave"));
  EXPECT_EQ(r.rows.GetValue(0, 1), Value("Toy"));
  // And the restored database is itself crash-recoverable.
  ASSERT_TRUE(restored.SimulateCrashAndRecover().ok());
  EXPECT_EQ(restored.GetTable("emp")->cardinality(), 1u);
}

TEST(DatabaseTest, SnapshotErrors) {
  Database nonempty;
  nonempty.CreateTable("t", {{"id", Type::kInt32}});
  EXPECT_EQ(nonempty.LoadSnapshot("/nonexistent").code(),
            StatusCode::kFailedPrecondition);
  Database empty;
  EXPECT_EQ(empty.LoadSnapshot("/nonexistent/mmdb").code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, ForeignKeyValidationThroughFacade) {
  Database db;
  db.CreateTable("a", {{"id", Type::kInt32}});
  db.CreateTable("b", {{"fk", Type::kPointer}});
  EXPECT_FALSE(db.DeclareForeignKey("b", "fk", "missing", "id").ok());
  EXPECT_FALSE(db.DeclareForeignKey("b", "zz", "a", "id").ok());
  EXPECT_TRUE(db.DeclareForeignKey("b", "fk", "a", "id").ok());
}

}  // namespace
}  // namespace mmdb
