// End-to-end crash-safe durability: enable -> commit -> crash -> Recover,
// checkpoint rotation and truncation, partitions that exist only in the
// WAL, systematic fault-injection sweeps, and shutdown ordering.

#include "src/core/durability.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/storage/tuple.h"
#include "src/txn/log_format.h"
#include "src/util/env.h"

namespace mmdb {
namespace {

constexpr char kDir[] = "dur";

DurabilityOptions SyncOptions(Env* env) {
  DurabilityOptions options;
  options.mode = DurabilityMode::kSync;
  options.dir = kDir;
  options.env = env;
  // Commits drive their own group-commit fsyncs; keep the background
  // flusher quiet enough that tests exercise the commit path.
  options.flush_interval = std::chrono::milliseconds(50);
  return options;
}

void MakeTable(Database* db, uint32_t slot_capacity = 64) {
  Relation::Options options;
  options.partition.slot_capacity = slot_capacity;
  ASSERT_NE(db->CreateTable("t", {{"id", Type::kInt32}, {"v", Type::kInt32}},
                            options),
            nullptr);
}

// Commits one (id, v) row transactionally and waits for durability.
// Returns true only if the write was acknowledged.
bool AckedInsert(Database* db, int32_t id, int32_t v) {
  std::unique_ptr<Transaction> txn = db->Begin();
  if (!txn->Insert("t", {Value(id), Value(v)}).ok()) {
    txn->Abort();
    return false;
  }
  if (!txn->Commit().ok()) return false;
  return db->WaitDurable(txn->commit_lsn()).ok();
}

std::set<int32_t> LiveIds(Database* db) {
  std::set<int32_t> ids;
  Relation* rel = db->GetTable("t");
  if (rel == nullptr) return ids;
  const size_t off = rel->schema().offset(0);
  for (const auto& p : rel->partitions()) {
    p->ForEachLive([&](TupleRef t) { ids.insert(tuple::GetInt32(t, off)); });
  }
  return ids;
}

TEST(DurabilityTest, CommitCrashRecover) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db);
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    EXPECT_EQ(db.durability_mode(), DurabilityMode::kSync);
    for (int32_t i = 0; i < 20; ++i) ASSERT_TRUE(AckedInsert(&db, i, i * 10));
    // No checkpoint since the inserts: they live only in the WAL.  The
    // "crash" drops everything that was never fsync'd.
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  RecoveryManager::Progress progress;
  ASSERT_TRUE(db2.Recover(kDir, &env, &progress).ok());
  EXPECT_EQ(LiveIds(&db2).size(), 20u);
  EXPECT_EQ(progress.log_records_merged, 20u);
  EXPECT_EQ(progress.log_records_dropped, 0u);
  EXPECT_EQ(db2.metrics().GetGauge("mmdb_recovery_records_replayed")->Value(),
            20);
}

TEST(DurabilityTest, PreExistingDataSurvivesViaInitialCheckpoint) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db);
    // Loaded before durability existed (non-transactional fast path).
    for (int32_t i = 0; i < 10; ++i) db.Insert("t", {Value(i), Value(i)});
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    ASSERT_TRUE(AckedInsert(&db, 100, 100));
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  ASSERT_TRUE(db2.Recover(kDir, &env, nullptr).ok());
  std::set<int32_t> ids = LiveIds(&db2);
  EXPECT_EQ(ids.size(), 11u);
  EXPECT_TRUE(ids.count(0) == 1 && ids.count(9) == 1 && ids.count(100) == 1);
}

TEST(DurabilityTest, CheckpointRotatesAndTruncatesTheWal) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db);
    // No PITR retention window: this test pins the classic contract that
    // a checkpoint makes the propagated WAL prefix (and the superseded
    // checkpoint) disappear immediately.
    DurabilityOptions options = SyncOptions(&env);
    options.wal_retain_segments = 0;
    ASSERT_TRUE(db.EnableDurability(std::move(options)).ok());
    for (int32_t i = 0; i < 8; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
    ASSERT_TRUE(db.CheckpointNow().ok());

    // The propagated prefix is gone: exactly one (fresh) WAL segment and
    // one checkpoint remain.
    std::vector<std::string> names;
    ASSERT_TRUE(env.ListDir(kDir, &names).ok());
    size_t wals = 0, ckpts = 0;
    uint64_t lsn;
    for (const std::string& n : names) {
      if (log_format::ParseWalFileName(n, &lsn)) ++wals;
      if (log_format::ParseCheckpointFileName(n, &lsn)) ++ckpts;
    }
    EXPECT_EQ(wals, 1u);
    EXPECT_EQ(ckpts, 1u);
    EXPECT_GE(db.durability()->checkpoint_lsn(), 16u);  // 8 data + 8 markers

    for (int32_t i = 100; i < 105; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  RecoveryManager::Progress progress;
  ASSERT_TRUE(db2.Recover(kDir, &env, &progress).ok());
  EXPECT_EQ(LiveIds(&db2).size(), 13u);
  // Only the post-checkpoint tail replays from the log.
  EXPECT_EQ(progress.log_records_merged, 5u);
}

TEST(DurabilityTest, PartitionBornAfterCheckpointExistsOnlyInTheLog) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db, /*slot_capacity=*/4);
    // Fill partition 0 before the initial checkpoint...
    for (int32_t i = 0; i < 4; ++i) db.Insert("t", {Value(i), Value(i)});
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    // ...then overflow into a new partition that no checkpoint has seen.
    for (int32_t i = 10; i < 16; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
    ASSERT_GE(db.GetTable("t")->partitions().size(), 2u);
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  ASSERT_TRUE(db2.Recover(kDir, &env, nullptr).ok());
  EXPECT_EQ(LiveIds(&db2).size(), 10u);
  ASSERT_GE(db2.GetTable("t")->partitions().size(), 2u);
}

TEST(DurabilityTest, UpdatesAndDeletesRecover) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db);
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    for (int32_t i = 0; i < 6; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));

    std::unique_ptr<Transaction> txn = db.Begin();
    Relation* rel = db.GetTable("t");
    const size_t off = rel->schema().offset(0);
    TupleRef victim = nullptr, updated = nullptr;
    for (const auto& p : rel->partitions()) {
      p->ForEachLive([&](TupleRef t) {
        if (tuple::GetInt32(t, off) == 2) victim = t;
        if (tuple::GetInt32(t, off) == 3) updated = t;
      });
    }
    ASSERT_NE(victim, nullptr);
    ASSERT_NE(updated, nullptr);
    ASSERT_TRUE(txn->Delete("t", victim).ok());
    ASSERT_TRUE(txn->Update("t", updated, 1, Value(333)).ok());
    ASSERT_TRUE(txn->Commit().ok());
    ASSERT_TRUE(db.WaitDurable(txn->commit_lsn()).ok());
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  ASSERT_TRUE(db2.Recover(kDir, &env, nullptr).ok());
  std::set<int32_t> ids = LiveIds(&db2);
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids.count(2), 0u);
  Relation* rel = db2.GetTable("t");
  const size_t id_off = rel->schema().offset(0);
  const size_t v_off = rel->schema().offset(1);
  int32_t v3 = -1;
  for (const auto& p : rel->partitions()) {
    p->ForEachLive([&](TupleRef t) {
      if (tuple::GetInt32(t, id_off) == 3) v3 = tuple::GetInt32(t, v_off);
    });
  }
  EXPECT_EQ(v3, 333);
}

TEST(DurabilityTest, AsyncModeIsDurableAfterFlush) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db);
    DurabilityOptions options = SyncOptions(&env);
    options.mode = DurabilityMode::kAsync;
    ASSERT_TRUE(db.EnableDurability(options).ok());
    for (int32_t i = 0; i < 5; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
    // WaitDurable is a no-op in async mode; force the flush explicitly
    // (the background flusher would do the same within flush_interval).
    ASSERT_TRUE(db.durability()->Pump(/*sync=*/true).ok());
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  ASSERT_TRUE(db2.Recover(kDir, &env, nullptr).ok());
  EXPECT_EQ(LiveIds(&db2).size(), 5u);
}

TEST(DurabilityTest, RecoverThenResumeDurably) {
  InMemEnv env;
  {
    Database db;
    MakeTable(&db);
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    for (int32_t i = 0; i < 3; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
  }
  env.CrashAndLoseUnsynced();
  {
    Database db;
    ASSERT_TRUE(db.Recover(kDir, &env, nullptr).ok());
    // Re-enable on the same directory and keep writing.
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    for (int32_t i = 10; i < 13; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  ASSERT_TRUE(db2.Recover(kDir, &env, nullptr).ok());
  EXPECT_EQ(LiveIds(&db2).size(), 6u);
}

TEST(DurabilityTest, DoubleEnableAndDisable) {
  InMemEnv env;
  Database db;
  MakeTable(&db);
  ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
  EXPECT_FALSE(db.EnableDurability(SyncOptions(&env)).ok());
  ASSERT_TRUE(AckedInsert(&db, 1, 1));
  ASSERT_TRUE(db.DisableDurability().ok());
  EXPECT_EQ(db.durability_mode(), DurabilityMode::kOff);
  ASSERT_TRUE(db.DisableDurability().ok());  // idempotent
  ASSERT_TRUE(AckedInsert(&db, 2, 2));       // WaitDurable is now a no-op
}

// The acked-writes invariant under a systematic fault sweep: arm a fault at
// every I/O index in turn, run a workload of acknowledged inserts until the
// disk dies, crash, recover through the clean base Env, and require every
// acknowledged insert to be present.  (Unacknowledged ones may or may not
// survive — that is allowed; silent loss of an ack is not.)
TEST(DurabilityTest, FaultSweepNeverLosesAckedWrites) {
  for (uint64_t fault_at = 1;; ++fault_at) {
    InMemEnv base;
    FaultInjectionEnv faulty(&base);
    std::set<int32_t> acked;
    {
      Database db;
      MakeTable(&db, /*slot_capacity=*/8);
      DurabilityOptions options = SyncOptions(&faulty);
      options.flush_interval = std::chrono::hours(1);  // deterministic I/O
      faulty.ArmFault(fault_at, fault_at % 2 == 0
                                    ? FaultInjectionEnv::FaultMode::kTornWrite
                                    : FaultInjectionEnv::FaultMode::kFail);
      if (!db.EnableDurability(std::move(options)).ok()) {
        // Fault hit during setup: nothing was ever acknowledged.
        continue;
      }
      for (int32_t i = 0; i < 12; ++i) {
        if (i == 6 && !db.CheckpointNow().ok()) break;
        if (AckedInsert(&db, i, i)) {
          acked.insert(i);
        } else {
          break;  // first failed ack: the disk is dead from here on
        }
      }
    }
    const bool fired = faulty.fault_fired();
    base.CrashAndLoseUnsynced();

    Database db2;
    RecoveryManager::Progress progress;
    Status s = db2.Recover(kDir, &base, &progress);
    ASSERT_TRUE(s.ok()) << "fault@" << fault_at << ": " << s.ToString();
    std::set<int32_t> ids = LiveIds(&db2);
    for (int32_t id : acked) {
      EXPECT_EQ(ids.count(id), 1u)
          << "acked insert " << id << " lost (fault@" << fault_at << ")";
    }
    if (!fired) break;  // the whole workload ran fault-free: sweep done
    ASSERT_LT(fault_at, 10000u) << "sweep did not terminate";
  }
}

// Shutdown ordering: constructing and destroying databases with live
// durability threads must not race relation teardown (run under TSan).
TEST(DurabilityTest, ConstructDestroyLoopIsClean) {
  for (int round = 0; round < 10; ++round) {
    InMemEnv env;
    Database db;
    MakeTable(&db);
    DurabilityOptions options = SyncOptions(&env);
    options.flush_interval = std::chrono::milliseconds(1);
    options.checkpoint_interval = std::chrono::milliseconds(2);
    ASSERT_TRUE(db.EnableDurability(std::move(options)).ok());
    for (int32_t i = 0; i < 5; ++i) ASSERT_TRUE(AckedInsert(&db, i, i));
    // ~Database stops the flusher + checkpointer before teardown.
  }
}

TEST(DurabilityTest, TableCreatedAfterEnableSurvivesRecovery) {
  InMemEnv env;
  {
    Database db;
    Relation::Options options;
    ASSERT_NE(db.CreateTable("old", {{"id", Type::kInt32}}, options),
              nullptr);
    ASSERT_TRUE(db.EnableDurability(SyncOptions(&env)).ok());
    // DDL after enable re-checkpoints so the schema journal knows the new
    // relation; without that, its WAL records would name an undeclared
    // relation and recovery would silently drop them.
    MakeTable(&db);
    ASSERT_TRUE(AckedInsert(&db, 7, 70));
  }
  env.CrashAndLoseUnsynced();

  Database db2;
  ASSERT_TRUE(db2.Recover(kDir, &env, nullptr).ok());
  ASSERT_NE(db2.GetTable("old"), nullptr);
  EXPECT_EQ(LiveIds(&db2), std::set<int32_t>{7});
}

TEST(DurabilityTest, RecoverRejectsNonEmptyDatabaseAndMissingDir) {
  InMemEnv env;
  Database db;
  MakeTable(&db);
  EXPECT_FALSE(db.Recover(kDir, &env, nullptr).ok());  // not empty

  Database empty;
  EXPECT_FALSE(empty.Recover("nope", &env, nullptr).ok());  // no such dir
}

}  // namespace
}  // namespace mmdb
