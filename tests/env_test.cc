// Env seam: POSIX + in-memory behaviour, crash simulation, fault injection.

#include "src/util/env.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/util/crc32c.h"

namespace mmdb {
namespace {

std::string TempDir(const std::string& tag) {
  std::string tmpl = std::string(::testing::TempDir()) + "mmdb_env_" + tag +
                     "_XXXXXX";
  char* made = mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62a8ab43u);
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  const uint32_t crc = crc32c::Value("hello", 5);
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
}

TEST(Crc32cTest, ExtendIsIncremental) {
  const char* data = "incremental checksum";
  uint32_t whole = crc32c::Value(data, 20);
  uint32_t part = crc32c::Extend(crc32c::Value(data, 7), data + 7, 13);
  EXPECT_EQ(whole, part);
}

TEST(PosixEnvTest, WriteReadRenameRemove) {
  Env* env = Env::Posix();
  const std::string dir = TempDir("posix");
  const std::string path = dir + "/a.txt";

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env->NewWritableFile(path, /*truncate=*/true, &f).ok());
  ASSERT_TRUE(f->Append("hello ").ok());
  ASSERT_TRUE(f->Append("world").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());

  std::string read;
  ASSERT_TRUE(env->ReadFile(path, &read).ok());
  EXPECT_EQ(read, "hello world");
  uint64_t size = 0;
  ASSERT_TRUE(env->FileSize(path, &size).ok());
  EXPECT_EQ(size, 11u);

  // Append mode continues an existing file.
  ASSERT_TRUE(env->NewWritableFile(path, /*truncate=*/false, &f).ok());
  ASSERT_TRUE(f->Append("!").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env->ReadFile(path, &read).ok());
  EXPECT_EQ(read, "hello world!");

  const std::string path2 = dir + "/b.txt";
  ASSERT_TRUE(env->RenameFile(path, path2).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_TRUE(env->FileExists(path2));

  std::vector<std::string> names;
  ASSERT_TRUE(env->ListDir(dir, &names).ok());
  EXPECT_EQ(names, std::vector<std::string>{"b.txt"});

  ASSERT_TRUE(env->RemoveFile(path2).ok());
  EXPECT_FALSE(env->FileExists(path2));
  EXPECT_FALSE(env->ReadFile(path2, &read).ok());
}

TEST(InMemEnvTest, CrashLosesUnsyncedSuffix) {
  InMemEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("d/synced", true, &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("-volatile").ok());
  ASSERT_TRUE(f->Close().ok());

  std::unique_ptr<WritableFile> g;
  ASSERT_TRUE(env.NewWritableFile("d/never_synced", true, &g).ok());
  ASSERT_TRUE(g->Append("gone").ok());
  ASSERT_TRUE(g->Close().ok());

  env.CrashAndLoseUnsynced();

  std::string read;
  ASSERT_TRUE(env.ReadFile("d/synced", &read).ok());
  EXPECT_EQ(read, "durable");
  EXPECT_FALSE(env.FileExists("d/never_synced"));
}

TEST(InMemEnvTest, RenameIsDurable) {
  InMemEnv env;
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("x.tmp", true, &f).ok());
  ASSERT_TRUE(f->Append("payload").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env.RenameFile("x.tmp", "x").ok());

  env.CrashAndLoseUnsynced();
  std::string read;
  ASSERT_TRUE(env.ReadFile("x", &read).ok());
  EXPECT_EQ(read, "payload");
  EXPECT_FALSE(env.FileExists("x.tmp"));
}

TEST(FaultInjectionEnvTest, FailsNthIoThenStaysDead) {
  InMemEnv base;
  FaultInjectionEnv env(&base);
  env.ArmFault(3, FaultInjectionEnv::FaultMode::kFail);

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", true, &f).ok());
  EXPECT_TRUE(f->Append("a").ok());   // io 1
  EXPECT_TRUE(f->Append("b").ok());   // io 2
  EXPECT_FALSE(f->Append("c").ok());  // io 3: the fault
  EXPECT_TRUE(env.fault_fired());
  EXPECT_FALSE(f->Append("d").ok());  // disk is dead
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_FALSE(env.RenameFile("f", "g").ok());

  std::string read;
  ASSERT_TRUE(env.ReadFile("f", &read).ok());  // reads still work
  EXPECT_EQ(read, "ab");

  env.Reset();
  EXPECT_TRUE(f->Append("e").ok());
  ASSERT_TRUE(env.ReadFile("f", &read).ok());
  EXPECT_EQ(read, "abe");
}

TEST(FaultInjectionEnvTest, ShortAndTornWrites) {
  InMemEnv base;
  FaultInjectionEnv env(&base);

  env.ArmFault(1, FaultInjectionEnv::FaultMode::kShortWrite);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("s", true, &f).ok());
  EXPECT_FALSE(f->Append("1234567890").ok());
  std::string read;
  ASSERT_TRUE(env.ReadFile("s", &read).ok());
  EXPECT_EQ(read, "12345");  // a prefix survived

  env.Reset();
  env.ArmFault(1, FaultInjectionEnv::FaultMode::kTornWrite);
  std::unique_ptr<WritableFile> g;
  ASSERT_TRUE(env.NewWritableFile("t", true, &g).ok());
  EXPECT_FALSE(g->Append("1234567890").ok());
  ASSERT_TRUE(env.ReadFile("t", &read).ok());
  ASSERT_EQ(read.size(), 6u);          // half + 1
  EXPECT_NE(read, "123456");           // ...with the last byte corrupted
  EXPECT_EQ(read.substr(0, 5), "12345");
}

TEST(FaultInjectionEnvTest, CountsSyncAndRename) {
  InMemEnv base;
  FaultInjectionEnv env(&base);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", true, &f).ok());
  ASSERT_TRUE(f->Append("x").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env.RenameFile("f", "g").ok());
  EXPECT_EQ(env.io_count(), 3u);  // append + sync + rename
}

}  // namespace
}  // namespace mmdb
