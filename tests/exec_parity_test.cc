// Differential parity: every batched (vectorized) operator must produce
// bit-identical output in identical order to its tuple-at-a-time reference
// path, and bump identical OpCounters (comparisons / hash calls / data
// moves) — batching changes memory access patterns, never semantics.  The
// `chunks` and `prefetches` counters are new in batched mode and exempt.
//
// Coverage axes: point/range/join/aggregate/sort/DISTINCT shapes, NULL
// column resolves (null tuple refs in temporary lists), duplicate keys
// (uniform and skewed), semijoin selectivity including zero matches, empty
// relations, and empty partitions (a partition whose rows were all
// deleted).  CI additionally runs this binary under ASan and TSan.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/exec/aggregate.h"
#include "src/exec/join.h"
#include "src/exec/project.h"
#include "src/exec/sort.h"
#include "src/storage/temp_list.h"
#include "src/util/counters.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

/// Exact ordered rendering of a temp list, row for row.
std::vector<std::string> RowsOf(const TempList& list) {
  std::vector<std::string> out;
  out.reserve(list.size());
  for (size_t r = 0; r < list.size(); ++r) {
    // Raw pointers render positions; prefer values when columns exist.
    if (!list.descriptor().columns().empty()) {
      out.push_back(list.RowToString(r));
    } else {
      std::string s;
      for (size_t c = 0; c < list.width(); ++c) {
        s += std::to_string(reinterpret_cast<uintptr_t>(list.At(r, c)));
        s += '|';
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

/// Counters with the batched-only fields zeroed, so the two modes can be
/// compared on the semantic work (comparisons, hashes, moves).
OpCounters Comparable(OpCounters c) {
  c.chunks = 0;
  c.prefetches = 0;
  return c;
}

/// Runs `body` under both modes and checks rows and counters match.
void ExpectParity(const std::function<TempList(ExecMode)>& body,
                  const std::string& what) {
  counters::Reset();
  TempList scalar = body(ExecMode::kTuple);
  const OpCounters scalar_counters = counters::Snapshot();
  counters::Reset();
  TempList batched = body(ExecMode::kBatched);
  const OpCounters batched_counters = counters::Snapshot();

  EXPECT_EQ(RowsOf(scalar), RowsOf(batched))
      << what << ": rows or order diverge";
  EXPECT_EQ(Comparable(scalar_counters), Comparable(batched_counters))
      << what << ": counters diverge\n  scalar:  "
      << scalar_counters.ToString() << "\n  batched: "
      << batched_counters.ToString();
}

struct ParityCase {
  std::string name;
  size_t outer_n, inner_n;
  double dup_pct;
  double stddev;
  double semijoin_pct;
};

class JoinParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(JoinParityTest, BatchedJoinsMatchTupleAtATime) {
  const ParityCase& pc = GetParam();
  WorkloadGen gen(4242);
  ColumnData inner_col = gen.Generate({pc.inner_n, pc.dup_pct, pc.stddev});
  ColumnData outer_col = gen.GenerateMatching(
      {pc.outer_n, pc.dup_pct, pc.stddev}, inner_col.uniques, pc.semijoin_pct);
  auto outer = WorkloadGen::BuildRelation("outer", outer_col);
  auto inner = WorkloadGen::BuildRelation("inner", inner_col);
  JoinSpec spec{outer.get(), 0, inner.get(), 0};

  ExpectParity([&](ExecMode m) { return HashJoin(spec, m); },
               pc.name + "/hash");
  for (size_t p : {size_t{2}, size_t{8}}) {
    ExpectParity(
        [&](ExecMode m) { return PartitionedHashJoin(spec, p, m); },
        pc.name + "/partitioned" + std::to_string(p));
    ExpectParity([&](ExecMode m) { return HybridHashJoin(spec, p, m); },
                 pc.name + "/hybrid" + std::to_string(p));
  }
  ExpectParity([&](ExecMode m) { return SortMergeJoin(spec, 10, m); },
               pc.name + "/sortmerge");

  // TempListJoin: a width-1 selection result joined against the inner.
  ExpectParity(
      [&](ExecMode m) {
        ResultDescriptor desc({outer.get()});
        TempList sel(desc);
        outer->ForEachTuple([&](TupleRef t) { sel.Append1(t); });
        return TempListJoin(sel, 0, *inner, 0, nullptr, m);
      },
      pc.name + "/templist");

  // Cross-mode agreement of the partitioned variant against monolithic
  // HashJoin (same rows, same order), batched or not.
  EXPECT_EQ(RowsOf(HashJoin(spec, ExecMode::kTuple)),
            RowsOf(PartitionedHashJoin(spec, 4, ExecMode::kBatched)))
      << pc.name << ": partitioned order != hash order";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JoinParityTest,
    ::testing::Values(
        ParityCase{"keys_equal", 300, 300, 0, 0.8, 100},
        ParityCase{"small_outer", 40, 500, 0, 0.8, 100},
        ParityCase{"dups_uniform", 200, 200, 50, 0.8, 100},
        ParityCase{"dups_skewed", 200, 200, 50, 0.1, 100},
        ParityCase{"heavy_dups", 128, 128, 90, 0.1, 100},
        ParityCase{"no_matches", 150, 150, 0, 0.8, 0},
        ParityCase{"empty_outer", 0, 100, 0, 0.8, 100},
        ParityCase{"empty_inner", 100, 0, 0, 0.8, 100},
        ParityCase{"chunk_boundary", 1024 + 3, 1024, 25, 0.5, 80}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return info.param.name;
    });

// ---- Whole-pipeline parity over a database ---------------------------------

std::unique_ptr<Database> MakeParityDb() {
  auto db = std::make_unique<Database>();
  db->reuse_cache().SetEnabled(false);  // a cache hit would skew counters
  Relation::Options opts;
  opts.partition.slot_capacity = 32;
  db->CreateTable("t", {{"id", Type::kInt32},
                        {"grp", Type::kInt32},
                        {"val", Type::kInt32},
                        {"name", Type::kString}},
                  opts);
  IndexConfig unique;
  unique.unique = true;
  EXPECT_NE(db->CreateIndex("t", "id", IndexKind::kChainedBucketHash, unique),
            nullptr);
  EXPECT_NE(db->CreateIndex("t", "grp", IndexKind::kTTree), nullptr);
  db->CreateTable("g", {{"gid", Type::kInt32}, {"label", Type::kString}});
  for (int i = 0; i < 8; ++i) {
    db->Insert("g", {Value(i), Value("g" + std::to_string(i))});
  }
  for (int i = 0; i < 400; ++i) {
    db->Insert("t", {Value(i), Value(i % 8), Value((i * 7) % 90),
                     Value("n" + std::to_string(i % 11))});
  }
  // Empty out one partition's worth of rows (ids 96..127 landed together
  // under slot_capacity 32): deleted-slot handling must not diverge.
  std::vector<TupleRef> doomed;
  db->GetTable("t")->ForEachTuple([&](TupleRef t) {
    const int32_t id =
        tuple::GetInt32(t, db->GetTable("t")->schema().offset(0));
    if (id >= 96 && id < 128) doomed.push_back(t);
  });
  for (TupleRef t : doomed) EXPECT_TRUE(db->Delete("t", t).ok());
  db->CreateTable("e", {{"id", Type::kInt32}, {"val", Type::kInt32}});
  return db;
}

TEST(PipelineParityTest, QueryShapesMatchAcrossModes) {
  auto db = MakeParityDb();
  const std::vector<
      std::pair<std::string, std::function<QueryResult(Database&)>>>
      shapes = {
          {"point", [](Database& d) {
             return d.Query("t").Where("id", CompareOp::kEq, 37).Run();
           }},
          {"range", [](Database& d) {
             return d.Query("t")
                 .Where("val", CompareOp::kGt, 40)
                 .Select({"t.id", "t.val"})
                 .Run();
           }},
          {"grp_eq", [](Database& d) {
             return d.Query("t").Where("grp", CompareOp::kEq, 5).Run();
           }},
          {"multi_conjunct", [](Database& d) {
             return d.Query("t")
                 .Where("grp", CompareOp::kEq, 3)
                 .Where("val", CompareOp::kLt, 60)
                 .Where("id", CompareOp::kGe, 10)
                 .Run();
           }},
          {"full_scan", [](Database& d) { return d.Query("t").Run(); }},
          {"distinct_sorted", [](Database& d) {
             return d.Query("t")
                 .Where("val", CompareOp::kLt, 70)
                 .Select({"t.name"})
                 .Distinct()
                 .OrderBySelected()
                 .Run();
           }},
          {"join", [](Database& d) {
             return d.Query("t")
                 .Where("id", CompareOp::kLt, 200)
                 .JoinWith("g", "grp", "gid")
                 .Select({"t.id", "g.label"})
                 .Run();
           }},
          {"empty_relation", [](Database& d) {
             return d.Query("e").Where("val", CompareOp::kGt, 0).Run();
           }},
          {"deleted_range", [](Database& d) {
             // Entirely within the emptied partition: zero rows.
             return d.Query("t")
                 .Where("id", CompareOp::kGe, 96)
                 .Where("id", CompareOp::kLt, 128)
                 .Run();
           }},
      };

  for (const auto& [name, run] : shapes) {
    SetExecModeForTest(ExecMode::kTuple);
    counters::Reset();
    QueryResult scalar = run(*db);
    const OpCounters scalar_counters = counters::Snapshot();

    SetExecModeForTest(ExecMode::kBatched);
    counters::Reset();
    QueryResult batched = run(*db);
    const OpCounters batched_counters = counters::Snapshot();
    ClearExecModeForTest();

    EXPECT_EQ(RowsOf(scalar.rows), RowsOf(batched.rows))
        << name << ": result rows or order diverge";
    EXPECT_EQ(Comparable(scalar_counters), Comparable(batched_counters))
        << name << ": counters diverge\n  scalar:  "
        << scalar_counters.ToString() << "\n  batched: "
        << batched_counters.ToString();
  }
}

// ---- Aggregate / sort / project over lists with NULL resolves --------------

/// Width-1 list over t's rows with interleaved null refs; columns grp, val.
TempList ListWithNulls(Database* db) {
  Relation* rel = db->GetTable("t");
  ResultDescriptor desc({rel});
  desc.AddColumn(0, 1, "t.grp");
  desc.AddColumn(0, 2, "t.val");
  TempList list(desc);
  int i = 0;
  rel->ForEachTuple([&](TupleRef t) {
    list.Append1(t);
    if (++i % 7 == 0) list.Append1(nullptr);  // NULL row: both columns null
  });
  return list;
}

TEST(PipelineParityTest, AggregateSortProjectMatchAcrossModesWithNulls) {
  auto db = MakeParityDb();
  TempList list = ListWithNulls(db.get());

  // Aggregate: group on a null-bearing column; COUNT(*) is null-safe.
  auto agg = [&](ExecMode m) {
    return HashGroupBy(list, {0}, {{AggFn::kCount, 0, "n"}}, m);
  };
  counters::Reset();
  AggregateResult scalar = agg(ExecMode::kTuple);
  const OpCounters sc = counters::Snapshot();
  counters::Reset();
  AggregateResult batched = agg(ExecMode::kBatched);
  const OpCounters bc = counters::Snapshot();
  ASSERT_EQ(scalar.rows.size(), batched.rows.size());
  for (size_t r = 0; r < scalar.rows.size(); ++r) {
    EXPECT_EQ(scalar.RowToString(r), batched.RowToString(r)) << "group " << r;
  }
  EXPECT_EQ(Comparable(sc), Comparable(bc))
      << "aggregate counters diverge\n  scalar:  " << sc.ToString()
      << "\n  batched: " << bc.ToString();

  // Sort with nulls: the keyed fast path must bail out to the generic
  // order-vector path without having counted anything.
  ExpectParity([&](ExecMode m) { return SortTempList(list, 10, m); },
               "sort/nulls");
  // Duplicate elimination with nulls (all null rows collapse to one).
  ExpectParity([&](ExecMode m) { return ProjectHash(list, m); },
               "project/nulls");

  // Null-free single-column list: exercises the keyed sort fast path.
  Relation* rel = db->GetTable("t");
  ResultDescriptor vdesc({rel});
  vdesc.AddColumn(0, 2, "t.val");
  TempList vals(vdesc);
  rel->ForEachTuple([&](TupleRef t) { vals.Append1(t); });
  ExpectParity([&](ExecMode m) { return SortTempList(vals, 10, m); },
               "sort/keyed");
  ExpectParity([&](ExecMode m) { return ProjectHash(vals, m); },
               "project/dups");
}

}  // namespace
}  // namespace mmdb
