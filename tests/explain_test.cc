// EXPLAIN ANALYZE: per-operator plan-node stats (estimated cost, actual
// rows, OpCounters deltas, wall time) through QueryBuilder::Analyze(), the
// shell's EXPLAIN ANALYZE statement, and the planner's cost estimates.

#include <gtest/gtest.h>

#include <string>

#include "src/core/database.h"
#include "src/core/planner.h"
#include "src/core/query.h"
#include "src/core/shell.h"

namespace mmdb {
namespace {

/// Two relations with enough rows for exact, hand-checkable counts:
/// `grp` holds ids 0..9; `item` holds 100 rows whose `gid` cycles 0..9
/// (10 items per group).
class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("grp", {{"id", Type::kInt32}, {"tag", Type::kString}});
    db_.CreateTable("item", {{"id", Type::kInt32},
                             {"gid", Type::kInt32},
                             {"score", Type::kInt32}});
    for (int g = 0; g < 10; ++g) {
      db_.Insert("grp", {Value(g), Value("tag" + std::to_string(g))});
    }
    for (int i = 0; i < 100; ++i) {
      db_.Insert("item", {Value(i), Value(i % 10), Value(i % 7)});
    }
  }

  Database db_;
};

TEST_F(ExplainTest, SingleTableSelectTree) {
  QueryResult r = db_.Query("item")
                      .Where("gid", CompareOp::kEq, 3)
                      .Analyze()
                      .Run();
  ASSERT_TRUE(r.analyzed);
  EXPECT_EQ(r.rows.size(), 10u);

  // Root: whole-query totals; one child: the select stage.
  EXPECT_EQ(r.analyze.actual_rows, 10u);
  ASSERT_EQ(r.analyze.children.size(), 1u);
  const PlanNodeStats& select = r.analyze.children[0];
  EXPECT_EQ(select.actual_rows, 10u);
  EXPECT_NE(select.label.find("select(item)"), std::string::npos);
  // No index on gid: sequential scan over 100 rows, est cost = n = 100.
  EXPECT_DOUBLE_EQ(select.est_cost, 100.0);
  EXPECT_GE(select.wall_micros, 0.0);
#if defined(MMDB_COUNTERS)
  // The scan compared gid on every row; the counters must show it.
  EXPECT_GE(select.ops.comparisons, 100u);
#endif
}

TEST_F(ExplainTest, TwoRelationJoinTreeHasExactRowCounts) {
  // select grp where id<3 (3 rows), then join item on gid: 3 groups x 10
  // items = 30 output rows.
  QueryResult r = db_.Query("grp")
                      .Where("id", CompareOp::kLt, 3)
                      .JoinWith("item", "id", "gid")
                      .Select({"grp.tag", "item.id"})
                      .Analyze()
                      .Run();
  ASSERT_TRUE(r.analyzed);
  ASSERT_EQ(r.rows.size(), 30u);

  ASSERT_EQ(r.analyze.children.size(), 2u);
  const PlanNodeStats& select = r.analyze.children[0];
  const PlanNodeStats& join = r.analyze.children[1];
  EXPECT_NE(select.label.find("select(grp)"), std::string::npos);
  EXPECT_EQ(select.actual_rows, 3u);  // exact: ids 0,1,2
  EXPECT_NE(join.label.find("join(item)"), std::string::npos);
  EXPECT_EQ(join.actual_rows, 30u);  // exact: 3 groups x 10 items
  EXPECT_EQ(r.analyze.actual_rows, 30u);
  EXPECT_GT(select.est_cost, 0.0);
  EXPECT_GT(join.est_cost, 0.0);
  // Root estimate aggregates the stages.
  EXPECT_DOUBLE_EQ(r.analyze.est_cost, select.est_cost + join.est_cost);
#if defined(MMDB_COUNTERS)
  // The hash build+probe spent hash calls; they belong to the join node,
  // not the select node.
  EXPECT_GT(join.ops.hash_calls, 0u);
#endif
}

TEST_F(ExplainTest, RenderShowsCostRowsTimePerLine) {
  QueryResult r = db_.Query("grp")
                      .Where("id", CompareOp::kLt, 3)
                      .JoinWith("item", "id", "gid")
                      .Analyze()
                      .Run();
  ASSERT_TRUE(r.analyzed);
  const std::string tree = r.analyze.Render();
  EXPECT_NE(tree.find("query(grp)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("-> select(grp)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("-> join(item)"), std::string::npos) << tree;
  EXPECT_NE(tree.find("cost="), std::string::npos);
  EXPECT_NE(tree.find("rows=30"), std::string::npos);
  EXPECT_NE(tree.find("time="), std::string::npos);
  EXPECT_NE(tree.find("cmp="), std::string::npos);  // OpCounters rendering
}

TEST_F(ExplainTest, DistinctAndOrderNodesAppear) {
  QueryResult r = db_.Query("item")
                      .Where("score", CompareOp::kEq, 0)
                      .Select({"item.gid"})
                      .Distinct()
                      .OrderBySelected()
                      .Analyze()
                      .Run();
  ASSERT_TRUE(r.analyzed);
  ASSERT_EQ(r.analyze.children.size(), 3u);
  EXPECT_NE(r.analyze.children[1].label.find("distinct"), std::string::npos);
  EXPECT_NE(r.analyze.children[2].label.find("order by"), std::string::npos);
  // Distinct output = order input = root output rows.
  EXPECT_EQ(r.analyze.children[2].actual_rows, r.rows.size());
}

TEST_F(ExplainTest, PlainRunLeavesAnalyzeOff) {
  QueryResult r = db_.Query("item").Where("gid", CompareOp::kEq, 3).Run();
  EXPECT_FALSE(r.analyzed);
  EXPECT_TRUE(r.analyze.children.empty());
}

TEST_F(ExplainTest, ErrorQueriesReportNoAnalyzeTree) {
  QueryResult r = db_.Query("nope").Analyze().Run();
  EXPECT_FALSE(r.analyzed);
  EXPECT_EQ(r.plan.rfind("error:", 0), 0u) << r.plan;
}

// ---- Planner estimates ------------------------------------------------------

TEST_F(ExplainTest, SelectEstimatesFollowTheAccessPathOrdering) {
  Relation* item = db_.GetTable("item");
  Predicate pred;
  pred.Add(1, CompareOp::kEq, Value(3));  // gid = 3
  const double scan =
      Planner::EstimateSelectCost(*item, pred, AccessPath::kSequentialScan);
  const double tree =
      Planner::EstimateSelectCost(*item, pred, AccessPath::kTreeLookup);
  const double hash =
      Planner::EstimateSelectCost(*item, pred, AccessPath::kHashLookup);
  // The paper's selection preference order: hash < tree < scan.
  EXPECT_LT(hash, tree);
  EXPECT_LT(tree, scan);
  EXPECT_DOUBLE_EQ(scan, 100.0);
}

TEST_F(ExplainTest, JoinEstimatesRankNestedLoopsWorst) {
  Relation* grp = db_.GetTable("grp");
  Relation* item = db_.GetTable("item");
  JoinSpec spec{grp, 0, item, 1};
  const double hash = Planner::EstimateJoinCost(spec, JoinMethod::kHashJoin);
  const double merge =
      Planner::EstimateJoinCost(spec, JoinMethod::kTreeMerge);
  const double nested =
      Planner::EstimateJoinCost(spec, JoinMethod::kNestedLoops);
  EXPECT_DOUBLE_EQ(hash, 110.0);    // |R1| + |R2|
  EXPECT_DOUBLE_EQ(merge, 210.0);   // |R1| + 2|R2|
  EXPECT_DOUBLE_EQ(nested, 1000.0); // |R1| * |R2|
  EXPECT_LT(hash, nested);
}

// ---- Shell ------------------------------------------------------------------

TEST_F(ExplainTest, ShellExplainAnalyzeExecutesAndPrintsTree) {
  CommandShell shell(&db_);
  const std::string out = shell.Execute(
      "EXPLAIN ANALYZE SELECT grp.tag, item.id FROM grp "
      "JOIN item ON id = gid WHERE id < 3");
  EXPECT_EQ(out.find("error"), std::string::npos) << out;
  EXPECT_NE(out.find("query(grp)"), std::string::npos) << out;
  EXPECT_NE(out.find("rows=30"), std::string::npos) << out;
  EXPECT_NE(out.find("cost="), std::string::npos) << out;
  EXPECT_NE(out.find("(30 rows)"), std::string::npos) << out;
}

TEST_F(ExplainTest, ShellPlainExplainStillSkipsExecution) {
  CommandShell shell(&db_);
  const std::string out =
      shell.Execute("EXPLAIN SELECT item.id FROM item WHERE gid = 3");
  EXPECT_EQ(out.rfind("plan: ", 0), 0u) << out;
  EXPECT_EQ(out.find("rows="), std::string::npos) << out;
}

}  // namespace
}  // namespace mmdb
