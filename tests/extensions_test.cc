// Tests for the paper's secondary machinery: non-equijoins via ordered
// indices (Section 3.3.5), indices on temporary lists and temp-list joins
// (Sections 2.1/2.3), and the active (background) log device (Figure 2).

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/core/database.h"
#include "src/core/planner.h"
#include "src/core/query.h"
#include "src/exec/join.h"
#include "src/exec/select.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

using testutil::AttachKeyIndex;

std::vector<std::pair<int32_t, int32_t>> Pairs(const TempList& list,
                                               const Relation& outer,
                                               const Relation& inner) {
  std::vector<std::pair<int32_t, int32_t>> out;
  for (size_t r = 0; r < list.size(); ++r) {
    out.emplace_back(testutil::KeyOf(list.At(r, 0), outer),
                     testutil::KeyOf(list.At(r, 1), inner));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Inequality joins -------------------------------------------------------

class InequalityJoinTest : public ::testing::Test {
 protected:
  InequalityJoinTest() {
    outer_ = testutil::IntRelation("outer", {1, 5, 9});
    inner_ = testutil::IntRelation("inner", {2, 5, 7});
    AttachKeyIndex(outer_.get(), IndexKind::kArray);
    tree_ = static_cast<const OrderedIndex*>(
        AttachKeyIndex(inner_.get(), IndexKind::kTTree));
    spec_ = JoinSpec{outer_.get(), 0, inner_.get(), 0};
  }

  std::vector<std::pair<int32_t, int32_t>> Oracle(CompareOp op) {
    std::vector<std::pair<int32_t, int32_t>> out;
    for (int32_t a : {1, 5, 9}) {
      for (int32_t b : {2, 5, 7}) {
        const bool keep = (op == CompareOp::kLt && a < b) ||
                          (op == CompareOp::kLe && a <= b) ||
                          (op == CompareOp::kGt && a > b) ||
                          (op == CompareOp::kGe && a >= b);
        if (keep) out.emplace_back(a, b);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<Relation> outer_, inner_;
  const OrderedIndex* tree_;
  JoinSpec spec_;
};

TEST_F(InequalityJoinTest, AllFourOperators) {
  for (CompareOp op :
       {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    TempList out = TreeInequalityJoin(spec_, op, *tree_);
    EXPECT_EQ(Pairs(out, *outer_, *inner_), Oracle(op))
        << CompareOpName(op);
  }
}

TEST_F(InequalityJoinTest, LargeRandomAgainstOracle) {
  Rng rng(55);
  std::vector<int32_t> ok(120), ik(150);
  for (auto& k : ok) k = static_cast<int32_t>(rng.NextBounded(60));
  for (auto& k : ik) k = static_cast<int32_t>(rng.NextBounded(60));
  auto outer = testutil::IntRelation("o", ok);
  auto inner = testutil::IntRelation("i", ik);
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  auto* tree = static_cast<const OrderedIndex*>(
      AttachKeyIndex(inner.get(), IndexKind::kTTree));
  JoinSpec spec{outer.get(), 0, inner.get(), 0};

  size_t expected_lt = 0;
  for (int32_t a : ok) {
    for (int32_t b : ik) {
      if (a < b) ++expected_lt;
    }
  }
  EXPECT_EQ(TreeInequalityJoin(spec, CompareOp::kLt, *tree).size(),
            expected_lt);
}

TEST_F(InequalityJoinTest, PlannerUsesExistingIndexOrBuildsArray) {
  bool used_existing = false;
  TempList via_index = Planner::InequalityJoin(spec_, CompareOp::kGe,
                                               &used_existing);
  EXPECT_TRUE(used_existing);
  EXPECT_EQ(Pairs(via_index, *outer_, *inner_), Oracle(CompareOp::kGe));

  // Join against the *seq* field (no ordered index): array is built.
  auto no_index = testutil::IntRelation("n", {2, 5, 7});
  AttachKeyIndex(no_index.get(), IndexKind::kChainedBucketHash);
  JoinSpec spec2{outer_.get(), 0, no_index.get(), 0};
  TempList via_build =
      Planner::InequalityJoin(spec2, CompareOp::kGe, &used_existing);
  EXPECT_FALSE(used_existing);
  EXPECT_EQ(Pairs(via_build, *outer_, *no_index), Oracle(CompareOp::kGe));
}

TEST_F(InequalityJoinTest, EmptySides) {
  auto empty = testutil::IntRelation("e", {});
  AttachKeyIndex(empty.get(), IndexKind::kArray);
  JoinSpec spec{empty.get(), 0, inner_.get(), 0};
  EXPECT_EQ(TreeInequalityJoin(spec, CompareOp::kLt, *tree_).size(), 0u);
}

// ---- Temp-list joins and indices --------------------------------------------

TEST(TempListJoinTest, SelectionThenJoinMatchesFullJoinFiltered) {
  auto outer = testutil::IntRelation("outer", {1, 2, 3, 4, 5, 6});
  auto inner = testutil::IntRelation("inner", {2, 4, 6, 8});
  AttachKeyIndex(outer.get(), IndexKind::kTTree);
  AttachKeyIndex(inner.get(), IndexKind::kTTree);

  Predicate p;
  p.Add(0, CompareOp::kLe, Value(4));
  TempList selected = Select(*outer, p);
  ASSERT_EQ(selected.size(), 4u);

  TempList joined = TempListJoin(selected, 0, *inner, 0);
  EXPECT_EQ(Pairs(joined, *outer, *inner),
            (std::vector<std::pair<int32_t, int32_t>>{{2, 2}, {4, 4}}));
}

TEST(TempListJoinTest, ProbesProvidedIndex) {
  auto outer = testutil::IntRelation("outer", {7, 8});
  auto inner = testutil::IntRelation("inner", {8, 9});
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  TupleIndex* hash = AttachKeyIndex(inner.get(), IndexKind::kChainedBucketHash);

  TempList all = Select(*outer, Predicate());
  TempList joined = TempListJoin(all, 0, *inner, 0, hash);
  EXPECT_EQ(joined.size(), 1u);
}

TEST(TempListIndexTest, OrderedIndexOverSelectionResult) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kArray);
  Predicate p;
  p.Add(0, CompareOp::kLt, Value(50));
  TempList selected = Select(*rel, p);
  selected.mutable_descriptor()->AddColumn(0, uint16_t{0});

  auto index = BuildTempListIndex(selected, 0, IndexKind::kTTree);
  EXPECT_EQ(index->size(), 50u);
  EXPECT_NE(index->Find(Value(10)), nullptr);
  EXPECT_EQ(index->Find(Value(60)), nullptr);  // filtered out
  // In-order scan over the temp list's tuples.
  std::vector<int32_t> keys =
      testutil::CollectKeys(*index, *rel);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(TempListIndexTest, DuplicateRowsIndexOnce) {
  auto rel = testutil::IntRelation("r", {5});
  ResultDescriptor desc({rel.get()});
  desc.AddColumn(0, uint16_t{0});
  TempList list(desc);
  TupleRef t = nullptr;
  rel->ForEachTuple([&](TupleRef u) { t = u; });
  list.Append1(t);
  list.Append1(t);  // same tuple twice
  auto index = BuildTempListIndex(list, 0, IndexKind::kChainedBucketHash);
  EXPECT_EQ(index->size(), 1u);
}

TEST(TempListIndexTest, IndexThroughForeignKeyColumn) {
  // Index a temp list on a column reached through an FK hop.
  Schema dept_schema({{"id", Type::kInt32}});
  Relation dept("dept", dept_schema);
  TupleRef d1 = dept.Insert({Value(100)});
  TupleRef d2 = dept.Insert({Value(200)});
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);
  Schema emp_schema({{"dept", Type::kPointer}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, &dept, 0).ok());
  TupleRef e1 = emp.Insert({Value(d1)});
  TupleRef e2 = emp.Insert({Value(d2)});

  ResultDescriptor desc({&emp});
  ASSERT_TRUE(desc.AddColumn(0, std::vector<uint16_t>{0, 0}));  // dept.id
  TempList list(desc);
  list.Append1(e1);
  list.Append1(e2);
  auto index = BuildTempListIndex(list, 0, IndexKind::kTTree);
  EXPECT_EQ(index->size(), 2u);
  EXPECT_EQ(index->Find(Value(100)), d1);  // entries point at dept tuples
}

// ---- Query builder with selection push-down ----------------------------------

TEST(QueryPushdownTest, SelectionRunsBeforeJoin) {
  Database db;
  db.CreateTable("a", {{"k", Type::kInt32}, {"v", Type::kInt32}});
  db.CreateTable("b", {{"k", Type::kInt32}});
  for (int i = 0; i < 20; ++i) {
    db.Insert("a", {Value(i), Value(i * 10)});
    db.Insert("b", {Value(i * 2)});
  }
  QueryResult r = db.Query("a")
                      .Where("k", CompareOp::kLt, 10)
                      .JoinWith("b", "k", "k")
                      .Select({"a.k", "b.k"})
                      .Run();
  // a.k in 0..9 joined to even b.k: 0,2,4,6,8.
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_NE(r.plan.find("select(a)"), std::string::npos) << r.plan;
  EXPECT_NE(r.plan.find("join(b)"), std::string::npos) << r.plan;
}

// ---- Background log device ----------------------------------------------------

TEST(BackgroundLogDeviceTest, DrainsCommittedWorkWhileRunning) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}});
  db.log_device().StartBackground(std::chrono::milliseconds(1));
  EXPECT_TRUE(db.log_device().background_running());

  for (int i = 0; i < 50; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(txn->Insert("t", {Value(i)}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  db.log_device().StopBackground();
  EXPECT_FALSE(db.log_device().background_running());
  // Everything committed reached the disk copy.
  EXPECT_EQ(db.log_buffer().committed_size(), 0u);
  EXPECT_EQ(db.log_device().accumulated(), 0u);
  size_t disk_tuples = 0;
  for (uint32_t pid : db.disk_image().PartitionsOf("t")) {
    disk_tuples += db.disk_image().ReadPartition("t", pid)->size();
  }
  EXPECT_EQ(disk_tuples, 50u);
}

TEST(BackgroundLogDeviceTest, StartStopIdempotent) {
  StableLogBuffer buffer;
  DiskImage disk;
  LogDevice device(&buffer, &disk);
  device.StartBackground(std::chrono::milliseconds(1));
  device.StartBackground(std::chrono::milliseconds(1));  // no-op
  device.StopBackground();
  device.StopBackground();  // no-op
  EXPECT_FALSE(device.background_running());
}

TEST(BackgroundLogDeviceTest, RecoveryAfterBackgroundPropagation) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}});
  db.Checkpoint();
  db.log_device().StartBackground(std::chrono::milliseconds(1));
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Insert("t", {Value(42)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  db.log_device().StopBackground();
  ASSERT_TRUE(db.SimulateCrashAndRecover().ok());
  EXPECT_NE(db.GetTable("t")->primary_index()->Find(Value(42)), nullptr);
}

}  // namespace
}  // namespace mmdb
