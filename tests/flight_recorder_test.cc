// Flight recorder: fingerprint shape-hashing, record round trips,
// ring wraparound (single-threaded and under concurrent readers — the
// TSan target for the seqlock), slow-query log thresholding.

#include "src/server/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/server/operation.h"
#include "src/util/log.h"

namespace mmdb {
namespace flight {
namespace {

/// Unique trace ids across every test in this binary: rings are per-thread
/// and never cleared, so ids must not collide between tests.
uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{0x0F11'0000'0000'0000ULL};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Operation PointSelect(const std::string& table, int id) {
  SelectSpec s;
  s.table = table;
  s.where = {WhereClause{"id", CompareOp::kEq, Value(id)}};
  s.columns = {table + ".name"};
  return Operation(std::move(s));
}

Record MakeRecord(uint64_t trace_id) {
  Record r;
  r.trace_id = trace_id;
  r.fingerprint = trace_id ^ 0xF00DULL;
  r.end_wall_micros = static_cast<int64_t>(trace_id & 0xFFFFFFFF);
  r.total_us = static_cast<uint32_t>(trace_id & 0xFFFF);
  r.queue_us = 11;
  r.lock_us = 22;
  r.exec_us = 33;
  r.commit_us = 44;
  r.rows = 7;
  r.attempts = 2;
  r.kind = static_cast<uint8_t>(OpKind::kSelect);
  r.status = 0;
  r.cache = static_cast<uint8_t>(CacheOutcome::kHit);
  r.admission = static_cast<uint8_t>(Admission::kAdmitted);
  return r;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabledForTest(true);
    saved_threshold_ = SlowThresholdMicros();
    // Silence the slow-query WARN lines during tests.
    logging::SetSinkForTest([](logging::Level, const std::string&) {});
  }
  void TearDown() override {
    SetSlowThresholdMicros(saved_threshold_);
    logging::SetSinkForTest(nullptr);
  }
  uint64_t saved_threshold_ = 0;
};

TEST_F(FlightRecorderTest, FingerprintIgnoresLiteralValues) {
  EXPECT_EQ(Fingerprint(PointSelect("emp", 1)),
            Fingerprint(PointSelect("emp", 999)));
}

TEST_F(FlightRecorderTest, FingerprintSeparatesShapes) {
  EXPECT_NE(Fingerprint(PointSelect("emp", 1)),
            Fingerprint(PointSelect("dept", 1)));
  InsertSpec ins;
  ins.table = "emp";
  ins.values = {Value(1)};
  EXPECT_NE(Fingerprint(PointSelect("emp", 1)),
            Fingerprint(Operation(std::move(ins))));
  EXPECT_NE(Fingerprint(PointSelect("emp", 1)), 0u);
}

TEST_F(FlightRecorderTest, NoteThenFindRoundTripsEveryField) {
  const uint64_t id = NextTraceId();
  const Record in = MakeRecord(id);
  Note(in);

  Record out;
  ASSERT_TRUE(FindByTraceId(id, &out));
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.end_wall_micros, in.end_wall_micros);
  EXPECT_EQ(out.total_us, in.total_us);
  EXPECT_EQ(out.queue_us, in.queue_us);
  EXPECT_EQ(out.lock_us, in.lock_us);
  EXPECT_EQ(out.exec_us, in.exec_us);
  EXPECT_EQ(out.commit_us, in.commit_us);
  EXPECT_EQ(out.rows, in.rows);
  EXPECT_EQ(out.attempts, in.attempts);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.cache, in.cache);
  EXPECT_EQ(out.admission, in.admission);
}

TEST_F(FlightRecorderTest, UnknownTraceIdIsNotFound) {
  Record out;
  EXPECT_FALSE(FindByTraceId(0xDEAD'BEEF'0000'0001ULL, &out));
}

TEST_F(FlightRecorderTest, DisabledNoteIsANoOp) {
  SetEnabledForTest(false);
  const uint64_t before = TotalRecorded();
  const uint64_t id = NextTraceId();
  Note(MakeRecord(id));
  SetEnabledForTest(true);
  EXPECT_EQ(TotalRecorded(), before);
  Record out;
  EXPECT_FALSE(FindByTraceId(id, &out));
}

TEST_F(FlightRecorderTest, RingWrapsKeepingNewestRecords) {
  // 3x the ring capacity through this thread's ring: the oldest two thirds
  // must be evicted, the newest kRingSlots all still findable.
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 3 * kRingSlots; ++i) ids.push_back(NextTraceId());
  for (uint64_t id : ids) Note(MakeRecord(id));

  Record out;
  for (size_t i = ids.size() - kRingSlots; i < ids.size(); ++i) {
    EXPECT_TRUE(FindByTraceId(ids[i], &out)) << "newest record " << i;
  }
  for (size_t i = 0; i < kRingSlots; ++i) {
    EXPECT_FALSE(FindByTraceId(ids[i], &out)) << "evicted record " << i;
  }
}

TEST_F(FlightRecorderTest, ConcurrentWrapAndSnapshotNeverTearsRecords) {
  // The TSan target: writers wrap their rings while readers snapshot.
  // Every record a reader sees must be internally consistent —
  // fingerprint == trace_id ^ 0xF00D holds for every written record, so a
  // torn read (old trace_id, new fingerprint) is detectable.
  constexpr int kWriters = 4;
  constexpr size_t kPerWriter = 3 * kRingSlots;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const Record& rec : Snapshot()) {
          if (rec.trace_id >= 0x0F11'0000'0000'0000ULL &&
              rec.fingerprint != (rec.trace_id ^ 0xF00DULL)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (size_t i = 0; i < kPerWriter; ++i) Note(MakeRecord(NextTraceId()));
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST_F(FlightRecorderTest, SlowRequestsEnterTheSlowLog) {
  ClearSlowLogForTest();
  SetSlowThresholdMicros(1000);
  const uint64_t slow_id = NextTraceId();
  const uint64_t fast_id = NextTraceId();
  Record slow = MakeRecord(slow_id);
  slow.total_us = 5000;
  Record fast = MakeRecord(fast_id);
  fast.total_us = 10;
  const uint64_t slow_before = TotalSlow();
  Note(slow);
  Note(fast);
  EXPECT_EQ(TotalSlow(), slow_before + 1);

  const std::string text = SlowLogText();
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%llx",
                static_cast<unsigned long long>(slow_id));
  EXPECT_NE(text.find(hex), std::string::npos) << text;
  std::snprintf(hex, sizeof(hex), "0x%llx",
                static_cast<unsigned long long>(fast_id));
  EXPECT_EQ(text.find(hex), std::string::npos) << text;
}

TEST_F(FlightRecorderTest, ShedRequestsAlwaysEnterTheSlowLog) {
  ClearSlowLogForTest();
  SetSlowThresholdMicros(1'000'000);  // nothing is slow by time
  const uint64_t id = NextTraceId();
  Record shed = MakeRecord(id);
  shed.total_us = 1;
  shed.admission = static_cast<uint8_t>(Admission::kShedQueue);
  Note(shed);
  const std::string text = SlowLogText();
  EXPECT_NE(text.find("shed_queue"), std::string::npos) << text;
}

TEST_F(FlightRecorderTest, FormatRecordIsStructuredKeyValue) {
  const Record r = MakeRecord(NextTraceId());
  const std::string line = FormatRecord(r);
  EXPECT_NE(line.find("trace=0x"), std::string::npos);
  EXPECT_NE(line.find("kind=select"), std::string::npos);
  EXPECT_NE(line.find("queue_us=11"), std::string::npos);
  EXPECT_NE(line.find("lock_us=22"), std::string::npos);
  EXPECT_NE(line.find("exec_us=33"), std::string::npos);
  EXPECT_NE(line.find("commit_us=44"), std::string::npos);
  EXPECT_NE(line.find("cache=hit"), std::string::npos);
  EXPECT_NE(line.find("admission=admitted"), std::string::npos);
}

TEST_F(FlightRecorderTest, DumpFlagIsOneShot) {
  EXPECT_FALSE(ConsumePendingDump());
  RequestDump();
  EXPECT_TRUE(ConsumePendingDump());
  EXPECT_FALSE(ConsumePendingDump());
}

}  // namespace
}  // namespace flight
}  // namespace mmdb
