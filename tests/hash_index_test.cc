// Structure-specific behavior of the four hash-based indices.

#include <gtest/gtest.h>

#include "src/index/chained_hash.h"
#include "src/index/extendible_hash.h"
#include "src/index/linear_hash.h"
#include "src/index/modified_linear_hash.h"
#include "src/util/counters.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

std::shared_ptr<const KeyOps> OpsFor(Relation* rel) {
  return std::make_shared<FieldKeyOps>(&rel->schema(), 0);
}

// ---- Chained Bucket Hashing ------------------------------------------------

TEST(ChainedBucketHashTest, StaticTableSizedAtConstruction) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  IndexConfig config;
  config.expected = 100;
  ChainedBucketHash index(OpsFor(rel.get()), config);
  EXPECT_EQ(index.table_size(), 128u);  // next pow2
  rel->ForEachTuple([&](TupleRef t) { index.Insert(t); });
  EXPECT_EQ(index.table_size(), 128u);  // never resizes: static structure
}

TEST(ChainedBucketHashTest, ChainsLengthenWhenOverfilled) {
  // The "static" downside: 10x the expected elements => ~10-long chains.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1280));
  IndexConfig config;
  config.expected = 128;
  ChainedBucketHash index(OpsFor(rel.get()), config);
  rel->ForEachTuple([&](TupleRef t) { index.Insert(t); });
  EXPECT_NEAR(index.Stats().avg_chain_length, 10.0, 0.01);
}

TEST(ChainedBucketHashTest, StatsReport) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(256));
  IndexConfig config;
  config.expected = 256;
  ChainedBucketHash index(OpsFor(rel.get()), config);
  rel->ForEachTuple([&](TupleRef t) { index.Insert(t); });
  auto stats = index.Stats();
  EXPECT_EQ(stats.buckets, 256u);
  EXPECT_EQ(stats.overflow_nodes, 256u);
  EXPECT_DOUBLE_EQ(stats.avg_chain_length, 1.0);
}

// ---- Extendible Hashing -----------------------------------------------------

TEST(ExtendibleHashTest, DirectoryDoublesUnderLoad) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(2000));
  IndexConfig config;
  config.node_size = 4;
  ExtendibleHash index(OpsFor(rel.get()), config);
  EXPECT_EQ(index.global_depth(), 0);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(index.Insert(t)); });
  // 2000 / 4-per-bucket needs >= 500 buckets -> directory of >= 512.
  EXPECT_GE(index.global_depth(), 9);
  EXPECT_GE(index.bucket_count(), 400u);
}

TEST(ExtendibleHashTest, DirectoryShrinksAfterMassDelete) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(2000));
  IndexConfig config;
  config.node_size = 4;
  ExtendibleHash index(OpsFor(rel.get()), config);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    index.Insert(t);
  });
  const int peak_depth = index.global_depth();
  for (TupleRef t : tuples) ASSERT_TRUE(index.Erase(t));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_LT(index.global_depth(), peak_depth);
  EXPECT_EQ(index.bucket_count(), 1u);
}

TEST(ExtendibleHashTest, SmallNodesInflateStorage) {
  // The paper's storage complaint: node size 2 makes the directory double
  // repeatedly, so bytes-per-element is far worse than at node size 16.
  auto factor = [&](int node_size) {
    auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(4000));
    IndexConfig config;
    config.node_size = node_size;
    ExtendibleHash index(OpsFor(rel.get()), config);
    rel->ForEachTuple([&](TupleRef t) { index.Insert(t); });
    return static_cast<double>(index.StorageBytes()) /
           (4000.0 * sizeof(TupleRef));
  };
  EXPECT_GT(factor(2), factor(16));
}

// ---- Linear Hashing ---------------------------------------------------------

TEST(LinearHashTest, UtilizationHeldInsideBand) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(5000));
  IndexConfig config;
  config.node_size = 8;
  LinearHash index(OpsFor(rel.get()), config);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(index.Insert(t)); });
  EXPECT_LE(index.Utilization(), 0.85);
  EXPECT_GE(index.Utilization(), 0.5);
  EXPECT_GT(index.bucket_count(), 4u);
}

TEST(LinearHashTest, ContractsOnDeletes) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(5000));
  IndexConfig config;
  config.node_size = 8;
  LinearHash index(OpsFor(rel.get()), config);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    index.Insert(t);
  });
  const size_t peak = index.bucket_count();
  for (size_t i = 0; i < 4500; ++i) ASSERT_TRUE(index.Erase(tuples[i]));
  EXPECT_LT(index.bucket_count(), peak);
  // Remaining elements still findable after all that churn.
  for (size_t i = 4500; i < tuples.size(); ++i) {
    EXPECT_EQ(index.Find(Value(testutil::KeyOf(tuples[i], *rel))), tuples[i]);
  }
}

TEST(LinearHashTest, SteadyStateChurnTriggersReorganization) {
  // The paper's criticism: Linear Hashing reorganizes even when the element
  // count is static.  A long insert/delete stream at constant size must
  // keep splitting/merging.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(2000));
  IndexConfig config;
  config.node_size = 4;
  LinearHash index(OpsFor(rel.get()), config);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
  for (size_t i = 0; i < 1000; ++i) index.Insert(tuples[i]);
  counters::Reset();
  Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    TupleRef t = tuples[rng.NextBounded(1000)];
    if (!index.Erase(t)) index.Insert(t);
  }
#if defined(MMDB_COUNTERS)
  auto snap = counters::Snapshot();
  EXPECT_GT(snap.splits + snap.merges, 0u);
#endif
}

// ---- Modified Linear Hashing ------------------------------------------------

TEST(ModifiedLinearHashTest, AverageChainLengthControlled) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(5000));
  IndexConfig config;
  config.node_size = 3;  // target average chain length
  ModifiedLinearHash index(OpsFor(rel.get()), config);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(index.Insert(t)); });
  EXPECT_LE(index.AvgChainLength(), 3.01);
  EXPECT_GT(index.AvgChainLength(), 0.5);
}

TEST(ModifiedLinearHashTest, StaticPopulationNeverReorganizes) {
  // The design point vs Linear Hashing: with constant cardinality, a pure
  // search workload and balanced insert/delete churn cause no splits.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  IndexConfig config;
  config.node_size = 4;
  ModifiedLinearHash index(OpsFor(rel.get()), config);
  rel->ForEachTuple([&](TupleRef t) { index.Insert(t); });
  counters::Reset();
  for (int32_t k = 0; k < 1000; ++k) {
    EXPECT_NE(index.Find(Value(k)), nullptr);
  }
#if defined(MMDB_COUNTERS)
  auto snap = counters::Snapshot();
  EXPECT_EQ(snap.splits, 0u);
  EXPECT_EQ(snap.merges, 0u);
#endif
}

TEST(ModifiedLinearHashTest, DirectoryShrinksOnMassDelete) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(4000));
  IndexConfig config;
  config.node_size = 2;
  ModifiedLinearHash index(OpsFor(rel.get()), config);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    index.Insert(t);
  });
  const size_t peak = index.bucket_count();
  for (size_t i = 0; i < 3800; ++i) ASSERT_TRUE(index.Erase(tuples[i]));
  EXPECT_LT(index.bucket_count(), peak);
  for (size_t i = 3800; i < tuples.size(); ++i) {
    EXPECT_EQ(index.Find(Value(testutil::KeyOf(tuples[i], *rel))), tuples[i]);
  }
}

TEST(ModifiedLinearHashTest, SingleItemNodesStorageProfile) {
  // Single-item nodes: ~2 pointer-widths per element plus the directory.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(2000));
  IndexConfig config;
  config.node_size = 2;
  ModifiedLinearHash index(OpsFor(rel.get()), config);
  rel->ForEachTuple([&](TupleRef t) { index.Insert(t); });
  const double factor = static_cast<double>(index.StorageBytes()) /
                        (2000.0 * sizeof(TupleRef));
  EXPECT_GE(factor, 2.0);
  EXPECT_LE(factor, 3.5);
}

}  // namespace
}  // namespace mmdb
