// Behavior common to all eight index structures of the Section 3.2 study,
// run as a parameterized suite over (kind, node size).

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace mmdb {
namespace {

struct Param {
  IndexKind kind;
  int node_size;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = IndexKindName(info.param.kind);
  for (char& c : name) {
    if (c == ' ') c = '_';
    if (c == '+') c = 'p';  // gtest param names must be alphanumeric/_
  }
  return name + "_n" + std::to_string(info.param.node_size);
}

class IndexBasicTest : public ::testing::TestWithParam<Param> {
 protected:
  std::unique_ptr<TupleIndex> Make(Relation* rel, bool unique = false) {
    IndexConfig config;
    config.node_size = GetParam().node_size;
    config.expected = 4096;
    config.unique = unique;
    auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
    return CreateIndex(GetParam().kind, std::move(ops), config);
  }
};

TEST_P(IndexBasicTest, InsertFindErase) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(500));
  auto index = Make(rel.get());
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
  for (TupleRef t : tuples) EXPECT_TRUE(index->Insert(t));
  EXPECT_EQ(index->size(), 500u);

  for (TupleRef t : tuples) {
    const int32_t key = testutil::KeyOf(t, *rel);
    EXPECT_EQ(index->Find(Value(key)), t);
  }
  EXPECT_EQ(index->Find(Value(100000)), nullptr);
  EXPECT_EQ(index->Find(Value(-5)), nullptr);

  // Erase half, re-check.
  for (size_t i = 0; i < tuples.size(); i += 2) {
    EXPECT_TRUE(index->Erase(tuples[i]));
  }
  EXPECT_EQ(index->size(), 250u);
  for (size_t i = 0; i < tuples.size(); ++i) {
    const int32_t key = testutil::KeyOf(tuples[i], *rel);
    if (i % 2 == 0) {
      EXPECT_EQ(index->Find(Value(key)), nullptr);
    } else {
      EXPECT_EQ(index->Find(Value(key)), tuples[i]);
    }
  }
}

TEST_P(IndexBasicTest, DoubleInsertOfSamePointerRejected) {
  auto rel = testutil::IntRelation("r", {42});
  auto index = Make(rel.get());
  TupleRef t = nullptr;
  rel->ForEachTuple([&](TupleRef u) { t = u; });
  EXPECT_TRUE(index->Insert(t));
  EXPECT_FALSE(index->Insert(t));
  EXPECT_EQ(index->size(), 1u);
}

TEST_P(IndexBasicTest, EraseMissingReturnsFalse) {
  auto rel = testutil::IntRelation("r", {1, 2});
  auto index = Make(rel.get());
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
  index->Insert(tuples[0]);
  EXPECT_FALSE(index->Erase(tuples[1]));
  EXPECT_TRUE(index->Erase(tuples[0]));
  EXPECT_FALSE(index->Erase(tuples[0]));
  EXPECT_EQ(index->size(), 0u);
}

TEST_P(IndexBasicTest, DuplicateKeysFindAll) {
  // 50 distinct keys x 6 copies.
  std::vector<int32_t> keys;
  for (int32_t k = 0; k < 50; ++k) {
    for (int c = 0; c < 6; ++c) keys.push_back(k);
  }
  auto rel = testutil::IntRelation("r", keys);
  auto index = Make(rel.get());
  rel->ForEachTuple([&](TupleRef t) { EXPECT_TRUE(index->Insert(t)); });
  EXPECT_EQ(index->size(), 300u);

  for (int32_t k = 0; k < 50; ++k) {
    std::vector<TupleRef> hits;
    index->FindAll(Value(k), &hits);
    EXPECT_EQ(hits.size(), 6u) << "key " << k;
    for (TupleRef t : hits) EXPECT_EQ(testutil::KeyOf(t, *rel), k);
  }
  std::vector<TupleRef> none;
  index->FindAll(Value(999), &none);
  EXPECT_TRUE(none.empty());
}

TEST_P(IndexBasicTest, EraseExactDuplicateInstance) {
  auto rel = testutil::IntRelation("r", {7, 7, 7});
  auto index = Make(rel.get());
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    index->Insert(t);
  });
  EXPECT_TRUE(index->Erase(tuples[1]));
  std::vector<TupleRef> hits;
  index->FindAll(Value(7), &hits);
  EXPECT_EQ(hits.size(), 2u);
  for (TupleRef t : hits) EXPECT_NE(t, tuples[1]);
}

TEST_P(IndexBasicTest, UniqueModeRejectsEqualKeys) {
  auto rel = testutil::IntRelation("r", {9, 9});
  auto index = Make(rel.get(), /*unique=*/true);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
  EXPECT_TRUE(index->Insert(tuples[0]));
  EXPECT_FALSE(index->Insert(tuples[1]));
  EXPECT_EQ(index->size(), 1u);
}

TEST_P(IndexBasicTest, ScanVisitsEverythingOnce) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(300));
  auto index = Make(rel.get());
  rel->ForEachTuple([&](TupleRef t) { index->Insert(t); });
  std::vector<int32_t> seen = testutil::CollectKeys(*index, *rel);
  ASSERT_EQ(seen.size(), 300u);
  for (int32_t i = 0; i < 300; ++i) EXPECT_EQ(seen[i], i);
}

TEST_P(IndexBasicTest, StorageBytesGrowsWithContent) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  auto index = Make(rel.get());
  const size_t empty_bytes = index->StorageBytes();
  rel->ForEachTuple([&](TupleRef t) { index->Insert(t); });
  // >= rather than >: the array index pre-reserves config.expected slots.
  EXPECT_GE(index->StorageBytes(), empty_bytes);
  // Any pointer-based index needs at least one 8-byte slot per element.
  EXPECT_GE(index->StorageBytes(), 1000 * sizeof(TupleRef));
}

TEST_P(IndexBasicTest, EmptyIndexBehaves) {
  auto rel = testutil::IntRelation("r", {});
  auto index = Make(rel.get());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_EQ(index->Find(Value(1)), nullptr);
  std::vector<TupleRef> hits;
  index->FindAll(Value(1), &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(testutil::CollectKeys(*index, *rel).size(), 0u);
}

TEST_P(IndexBasicTest, KindMetadata) {
  auto rel = testutil::IntRelation("r", {});
  auto index = Make(rel.get());
  EXPECT_EQ(index->kind(), GetParam().kind);
  EXPECT_EQ(IndexKindOrdered(index->kind()),
            dynamic_cast<OrderedIndex*>(index.get()) != nullptr);
  EXPECT_STRNE(IndexKindName(index->kind()), "?");
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, IndexBasicTest,
    ::testing::Values(
        Param{IndexKind::kArray, 2}, Param{IndexKind::kAvlTree, 2},
        Param{IndexKind::kBTree, 4}, Param{IndexKind::kBTree, 20},
        Param{IndexKind::kBPlusTree, 4}, Param{IndexKind::kBPlusTree, 20},
        Param{IndexKind::kTTree, 4}, Param{IndexKind::kTTree, 20},
        Param{IndexKind::kChainedBucketHash, 2},
        Param{IndexKind::kExtendibleHash, 2},
        Param{IndexKind::kExtendibleHash, 8},
        Param{IndexKind::kLinearHash, 2}, Param{IndexKind::kLinearHash, 8},
        Param{IndexKind::kModifiedLinearHash, 2},
        Param{IndexKind::kModifiedLinearHash, 8}),
    ParamName);

}  // namespace
}  // namespace mmdb
