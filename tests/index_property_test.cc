// Property suite: every index structure, across node sizes, must agree with
// a reference model (std::multimap) under long random streams of
// interleaved inserts, deletes, and lookups — the "query mix" of Section
// 3.2.2 turned into an oracle test.  Tree structures additionally have
// their structural invariants checked along the way.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/index/avl_tree.h"
#include "src/index/bplus_tree.h"
#include "src/index/btree.h"
#include "src/index/ttree.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

struct Param {
  IndexKind kind;
  int node_size;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = IndexKindName(info.param.kind);
  for (char& c : name) {
    if (c == ' ') c = '_';
    if (c == '+') c = 'p';  // gtest param names must be alphanumeric/_
  }
  return name + "_n" + std::to_string(info.param.node_size);
}

class IndexPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void CheckStructure(TupleIndex* index) {
    switch (index->kind()) {
      case IndexKind::kTTree:
        EXPECT_TRUE(static_cast<TTree*>(index)->CheckInvariants());
        break;
      case IndexKind::kAvlTree:
        EXPECT_TRUE(static_cast<AvlTree*>(index)->CheckInvariants());
        break;
      case IndexKind::kBTree:
        EXPECT_TRUE(static_cast<BTree*>(index)->CheckInvariants());
        break;
      case IndexKind::kBPlusTree:
        EXPECT_TRUE(static_cast<BPlusTree*>(index)->CheckInvariants());
        break;
      default:
        break;
    }
  }
};

TEST_P(IndexPropertyTest, RandomQueryMixMatchesReferenceModel) {
  // Key space deliberately small (many duplicates, many misses).
  constexpr int32_t kKeySpace = 120;
  constexpr size_t kTuples = 600;
  constexpr int kOps = 4000;

  Rng rng(0xC0FFEE + GetParam().node_size);
  std::vector<int32_t> keys;
  keys.reserve(kTuples);
  for (size_t i = 0; i < kTuples; ++i) {
    keys.push_back(static_cast<int32_t>(rng.NextBounded(kKeySpace)));
  }
  auto rel = testutil::IntRelation("r", keys);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });

  IndexConfig config;
  config.node_size = GetParam().node_size;
  config.expected = kTuples;
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  auto index = CreateIndex(GetParam().kind, std::move(ops), config);

  std::multimap<int32_t, TupleRef> model;
  std::set<TupleRef> in_index;

  auto key_of = [&](TupleRef t) { return testutil::KeyOf(t, *rel); };

  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 40) {  // insert a random tuple (may already be present)
      TupleRef t = tuples[rng.NextBounded(tuples.size())];
      const bool expect_ok = !in_index.contains(t);
      EXPECT_EQ(index->Insert(t), expect_ok);
      if (expect_ok) {
        model.emplace(key_of(t), t);
        in_index.insert(t);
      }
    } else if (dice < 70) {  // delete a random tuple (may be absent)
      TupleRef t = tuples[rng.NextBounded(tuples.size())];
      const bool expect_ok = in_index.contains(t);
      EXPECT_EQ(index->Erase(t), expect_ok);
      if (expect_ok) {
        auto [lo, hi] = model.equal_range(key_of(t));
        for (auto it = lo; it != hi; ++it) {
          if (it->second == t) {
            model.erase(it);
            break;
          }
        }
        in_index.erase(t);
      }
    } else {  // search
      const int32_t k = static_cast<int32_t>(rng.NextBounded(kKeySpace));
      std::vector<TupleRef> hits;
      index->FindAll(Value(k), &hits);
      auto [lo, hi] = model.equal_range(k);
      std::set<TupleRef> expected;
      for (auto it = lo; it != hi; ++it) expected.insert(it->second);
      EXPECT_EQ(std::set<TupleRef>(hits.begin(), hits.end()), expected)
          << "key " << k << " at op " << op;
      TupleRef one = index->Find(Value(k));
      EXPECT_EQ(one != nullptr, !expected.empty());
      if (one != nullptr) EXPECT_TRUE(expected.contains(one));
    }
    EXPECT_EQ(index->size(), model.size());
    if (op % 500 == 499) CheckStructure(index.get());
  }
  CheckStructure(index.get());

  // Final full-content check.
  std::vector<int32_t> got = testutil::CollectKeys(*index, *rel);
  std::vector<int32_t> expected;
  for (const auto& [k, t] : model) expected.push_back(k);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST_P(IndexPropertyTest, GrowShrinkGrowCycle) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(2000));
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });

  IndexConfig config;
  config.node_size = GetParam().node_size;
  config.expected = tuples.size();
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  auto index = CreateIndex(GetParam().kind, std::move(ops), config);

  for (TupleRef t : tuples) ASSERT_TRUE(index->Insert(t));
  CheckStructure(index.get());
  // Shrink to nothing.
  for (TupleRef t : tuples) ASSERT_TRUE(index->Erase(t));
  EXPECT_EQ(index->size(), 0u);
  CheckStructure(index.get());
  // Grow again: structure must be fully reusable after emptying.
  for (TupleRef t : tuples) ASSERT_TRUE(index->Insert(t));
  EXPECT_EQ(index->size(), tuples.size());
  CheckStructure(index.get());
  EXPECT_EQ(testutil::CollectKeys(*index, *rel).size(), tuples.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, IndexPropertyTest,
    ::testing::Values(
        Param{IndexKind::kArray, 2},
        Param{IndexKind::kAvlTree, 2},
        Param{IndexKind::kBTree, 2}, Param{IndexKind::kBTree, 5},
        Param{IndexKind::kBTree, 16},
        Param{IndexKind::kBPlusTree, 2}, Param{IndexKind::kBPlusTree, 5},
        Param{IndexKind::kBPlusTree, 16},
        Param{IndexKind::kTTree, 1}, Param{IndexKind::kTTree, 2},
        Param{IndexKind::kTTree, 5}, Param{IndexKind::kTTree, 16},
        Param{IndexKind::kTTree, 64},
        Param{IndexKind::kChainedBucketHash, 2},
        Param{IndexKind::kExtendibleHash, 1},
        Param{IndexKind::kExtendibleHash, 4},
        Param{IndexKind::kExtendibleHash, 16},
        Param{IndexKind::kLinearHash, 1}, Param{IndexKind::kLinearHash, 4},
        Param{IndexKind::kLinearHash, 16},
        Param{IndexKind::kModifiedLinearHash, 1},
        Param{IndexKind::kModifiedLinearHash, 4},
        Param{IndexKind::kModifiedLinearHash, 16}),
    ParamName);

}  // namespace
}  // namespace mmdb
