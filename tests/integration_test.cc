// Cross-layer integration: the paper's Figure 1 database exercised through
// storage, indices, executor, planner, transactions, and recovery together;
// plus a larger generated-workload pipeline (select -> join -> project).

#include <gtest/gtest.h>

#include <set>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/exec/join.h"
#include "src/exec/project.h"
#include "src/exec/select.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("dept", {{"name", Type::kString}, {"id", Type::kInt32}});
    db_.CreateIndex("dept", "id", IndexKind::kTTree);
    db_.CreateTable("emp", {{"name", Type::kString},
                            {"id", Type::kInt32},
                            {"age", Type::kInt32},
                            {"dept_id", Type::kPointer}});
    db_.CreateIndex("emp", "id", IndexKind::kTTree);
    db_.CreateIndex("emp", "age", IndexKind::kTTree);
    ASSERT_TRUE(db_.DeclareForeignKey("emp", "dept_id", "dept", "id").ok());

    // Figure 1's data.
    db_.Insert("dept", {Value("Toy"), Value(459)});
    db_.Insert("dept", {Value("Shoe"), Value(409)});
    db_.Insert("dept", {Value("Linen"), Value(411)});
    db_.Insert("dept", {Value("Paint"), Value(455)});
    db_.Insert("emp", {Value("Dave"), Value(23), Value(24), Value(459)});
    db_.Insert("emp", {Value("Suzan"), Value(12), Value(27), Value(459)});
    db_.Insert("emp", {Value("Yuman"), Value(44), Value(54), Value(411)});
    db_.Insert("emp", {Value("Jane"), Value(43), Value(47), Value(411)});
    db_.Insert("emp", {Value("Cindy"), Value(22), Value(22), Value(409)});
  }

  Database db_;
};

TEST_F(Figure1Test, PrecomputedJoinMatchesFigure1ResultRelation) {
  // The paper's Figure 1 result: equijoin on Department Id yields the
  // (employee, department) pairs via the materialized pointers.
  Relation* emp = db_.GetTable("emp");
  TempList result = PrecomputedJoin(*emp, 3);
  EXPECT_EQ(result.size(), 5u);
  ResultDescriptor* desc = result.mutable_descriptor();
  ASSERT_TRUE(desc->AddColumn(0, uint16_t{0}));  // Emp Name
  ASSERT_TRUE(desc->AddColumn(0, uint16_t{2}));  // Emp Age
  ASSERT_TRUE(desc->AddColumn(1, uint16_t{0}));  // Dept Name

  std::set<std::string> rows;
  for (size_t r = 0; r < result.size(); ++r) rows.insert(result.RowToString(r));
  EXPECT_TRUE(rows.contains("(\"Dave\", 24, \"Toy\")"));
  EXPECT_TRUE(rows.contains("(\"Cindy\", 22, \"Shoe\")"));
  EXPECT_TRUE(rows.contains("(\"Jane\", 47, \"Linen\")"));
}

TEST_F(Figure1Test, Query2PointerComparisonJoin) {
  // Query 2: select Toy/Shoe departments, then find their employees by
  // comparing *tuple pointers* rather than data values (Section 2.1).
  Relation* dept = db_.GetTable("dept");
  Relation* emp = db_.GetTable("emp");
  Predicate p;
  p.Add(0, CompareOp::kEq, Value("Toy"));
  TempList toy = Select(*dept, p);
  Predicate p2;
  p2.Add(0, CompareOp::kEq, Value("Shoe"));
  TempList shoe = Select(*dept, p2);
  ASSERT_EQ(toy.size() + shoe.size(), 2u);

  std::set<TupleRef> wanted{toy.At(0, 0), shoe.At(0, 0)};
  std::set<std::string> names;
  const Schema& es = emp->schema();
  ScanRelation(*emp, [&](TupleRef e) {
    if (wanted.contains(tuple::GetPointer(e, es.offset(3)))) {
      names.insert(std::string(tuple::GetString(e, es.offset(0))));
    }
    return true;
  });
  EXPECT_EQ(names, (std::set<std::string>{"Dave", "Suzan", "Cindy"}));
}

TEST_F(Figure1Test, TransactionalUpdateThenCrashRecovery) {
  db_.Checkpoint();
  auto txn = db_.Begin();
  Relation* emp = db_.GetTable("emp");
  TupleRef cindy = emp->FindIndexOn(1, true)->Find(Value(22));
  ASSERT_NE(cindy, nullptr);
  ASSERT_TRUE(txn->Update("emp", cindy, 2, Value(23)).ok());  // birthday
  ASSERT_TRUE(txn->Insert("emp", {Value("Pat"), Value(99), Value(41),
                                  Value(455)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  db_.log_device().Pump();  // accumulated, not yet on disk

  ASSERT_TRUE(db_.SimulateCrashAndRecover({"emp", "dept"}).ok());

  QueryResult r = db_.Query("emp")
                      .Where("name", CompareOp::kEq, "Cindy")
                      .Select({"emp.age", "emp.dept_id.name"})
                      .Run();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows.GetValue(0, 0), Value(23));
  EXPECT_EQ(r.rows.GetValue(0, 1), Value("Shoe"));
  QueryResult pat = db_.Query("emp")
                        .Where("name", CompareOp::kEq, "Pat")
                        .Select({"emp.dept_id.name"})
                        .Run();
  ASSERT_EQ(pat.rows.size(), 1u);
  EXPECT_EQ(pat.rows.GetValue(0, 0), Value("Paint"));
}

TEST(PipelineTest, SelectJoinProjectOnGeneratedWorkload) {
  // Generated relations (Section 3.3.1), full pipeline with oracle checks.
  WorkloadGen gen(99);
  ColumnData inner_col = gen.Generate({1000, 50, 0.4});
  ColumnData outer_col =
      gen.GenerateMatching({500, 50, 0.4}, inner_col.uniques, 80);
  auto outer = WorkloadGen::BuildRelation("outer", outer_col);
  auto inner = WorkloadGen::BuildRelation("inner", inner_col);

  // Selection: outer.seq < 250 via sequential scan.
  Predicate p;
  p.Add(1, CompareOp::kLt, Value(250));
  TempList selected = Select(*outer, p);
  EXPECT_EQ(selected.size(), 250u);

  // Join (hash) and its oracle.
  JoinSpec spec{outer.get(), 0, inner.get(), 0};
  TempList joined = HashJoin(spec);
  size_t expected_pairs = 0;
  std::multiset<int32_t> inner_keys(inner_col.values.begin(),
                                    inner_col.values.end());
  for (int32_t k : outer_col.values) {
    expected_pairs += inner_keys.count(k);
  }
  EXPECT_EQ(joined.size(), expected_pairs);

  // Project the outer join key, eliminating duplicates both ways.
  ResultDescriptor* desc = joined.mutable_descriptor();
  ASSERT_TRUE(desc->AddColumn(0, uint16_t{0}));
  TempList hashed = ProjectHash(joined);
  TempList sorted = ProjectSortScan(joined);
  std::set<int32_t> distinct_matching;
  std::set<int32_t> inner_set(inner_col.values.begin(),
                              inner_col.values.end());
  for (int32_t k : outer_col.values) {
    if (inner_set.contains(k)) distinct_matching.insert(k);
  }
  EXPECT_EQ(hashed.size(), distinct_matching.size());
  EXPECT_EQ(sorted.size(), distinct_matching.size());
}

TEST(PipelineTest, PlannerChoosesAndRunsEndToEnd) {
  WorkloadGen gen(7);
  ColumnData ic = gen.Generate({2000, 0, 0.8});
  auto inner = WorkloadGen::BuildRelation("inner", ic);
  testutil::AttachKeyIndex(inner.get(), IndexKind::kTTree);
  // Small outer (10% of inner), keys sampled from the inner, and *no*
  // ordered index on its join column => the Tree Join exception fires.
  std::vector<int32_t> outer_keys(ic.uniques.begin(),
                                  ic.uniques.begin() + 200);
  auto outer = testutil::IntRelation("outer", outer_keys);
  testutil::AttachKeyIndex(outer.get(), IndexKind::kChainedBucketHash);

  JoinPlan plan;
  TempList out = Planner::Join({outer.get(), 0, inner.get(), 0}, JoinStats(),
                               &plan);
  EXPECT_EQ(plan.method, JoinMethod::kTreeJoin);
  EXPECT_EQ(out.size(), 200u);  // unique keys, 100% selectivity
}

}  // namespace
}  // namespace mmdb
