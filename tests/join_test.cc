// The six join algorithms of Section 3.3 checked against each other and
// against a brute-force oracle, across the paper's workload axes
// (cardinality ratios, duplicate percentage and distribution, semijoin
// selectivity).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/exec/join.h"
#include "src/index/ttree.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

using testutil::AttachKeyIndex;

/// (outer key, inner key) pairs, sorted, for result comparison.
std::vector<std::pair<int32_t, int32_t>> Pairs(const TempList& list,
                                               const Relation& outer,
                                               const Relation& inner) {
  std::vector<std::pair<int32_t, int32_t>> out;
  for (size_t r = 0; r < list.size(); ++r) {
    out.emplace_back(testutil::KeyOf(list.At(r, 0), outer),
                     testutil::KeyOf(list.At(r, 1), inner));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Brute-force oracle over the raw tuples (seq fields included so the
/// expected multiset counts duplicate cross products correctly).
std::vector<std::pair<int32_t, int32_t>> Oracle(const Relation& outer,
                                                const Relation& inner) {
  std::vector<int32_t> ok, ik;
  outer.ForEachTuple([&](TupleRef t) { ok.push_back(testutil::KeyOf(t, outer)); });
  inner.ForEachTuple([&](TupleRef t) { ik.push_back(testutil::KeyOf(t, inner)); });
  std::vector<std::pair<int32_t, int32_t>> out;
  for (int32_t a : ok) {
    for (int32_t b : ik) {
      if (a == b) out.emplace_back(a, b);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const OrderedIndex* TreeOn(Relation* rel) {
  return static_cast<const OrderedIndex*>(
      AttachKeyIndex(rel, IndexKind::kTTree));
}

struct JoinCase {
  std::string name;
  size_t outer_n, inner_n;
  double dup_pct;
  double stddev;
  double semijoin_pct;
};

class JoinAlgorithmsTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinAlgorithmsTest, AllMethodsAgreeWithOracle) {
  const JoinCase& jc = GetParam();
  WorkloadGen gen(1234);
  ColumnData inner_col =
      gen.Generate({jc.inner_n, jc.dup_pct, jc.stddev});
  ColumnData outer_col = gen.GenerateMatching(
      {jc.outer_n, jc.dup_pct, jc.stddev}, inner_col.uniques, jc.semijoin_pct);
  auto outer = WorkloadGen::BuildRelation("outer", outer_col);
  auto inner = WorkloadGen::BuildRelation("inner", inner_col);
  const OrderedIndex* outer_tree = TreeOn(outer.get());
  const OrderedIndex* inner_tree = TreeOn(inner.get());

  JoinSpec spec{outer.get(), 0, inner.get(), 0};
  auto expected = Oracle(*outer, *inner);

  EXPECT_EQ(Pairs(NestedLoopsJoin(spec), *outer, *inner), expected);
  EXPECT_EQ(Pairs(HashJoin(spec), *outer, *inner), expected);
  EXPECT_EQ(Pairs(TreeJoin(spec, *inner_tree), *outer, *inner), expected);
  EXPECT_EQ(Pairs(SortMergeJoin(spec), *outer, *inner), expected);
  EXPECT_EQ(Pairs(TreeMergeJoin(spec, *outer_tree, *inner_tree), *outer,
                  *inner),
            expected);
}

INSTANTIATE_TEST_SUITE_P(
    Compositions, JoinAlgorithmsTest,
    ::testing::Values(
        JoinCase{"keys_equal", 200, 200, 0, 0.8, 100},
        JoinCase{"small_outer", 40, 400, 0, 0.8, 100},
        JoinCase{"small_inner", 400, 40, 0, 0.8, 100},
        JoinCase{"dups_uniform", 150, 150, 50, 0.8, 100},
        JoinCase{"dups_skewed", 150, 150, 50, 0.1, 100},
        JoinCase{"heavy_dups", 100, 100, 90, 0.1, 100},
        JoinCase{"low_selectivity", 200, 200, 50, 0.8, 10},
        JoinCase{"no_matches", 100, 100, 0, 0.8, 0}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      return info.param.name;
    });

TEST(JoinTest, EmptyRelations) {
  auto outer = testutil::IntRelation("outer", {});
  auto inner = testutil::IntRelation("inner", {1, 2, 3});
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  const OrderedIndex* it = TreeOn(inner.get());
  JoinSpec spec{outer.get(), 0, inner.get(), 0};
  EXPECT_EQ(HashJoin(spec).size(), 0u);
  EXPECT_EQ(TreeJoin(spec, *it).size(), 0u);
  EXPECT_EQ(SortMergeJoin(spec).size(), 0u);
  EXPECT_EQ(NestedLoopsJoin(spec).size(), 0u);

  JoinSpec flipped{inner.get(), 0, outer.get(), 0};
  EXPECT_EQ(HashJoin(flipped).size(), 0u);
  EXPECT_EQ(SortMergeJoin(flipped).size(), 0u);
}

TEST(JoinTest, DuplicateCrossProductCounts) {
  // 3 copies of key 7 on each side -> 9 result rows.
  auto outer = testutil::IntRelation("outer", {7, 7, 7, 1});
  auto inner = testutil::IntRelation("inner", {7, 7, 7, 2});
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  AttachKeyIndex(inner.get(), IndexKind::kArray);
  const OrderedIndex* ot = TreeOn(outer.get());
  const OrderedIndex* it = TreeOn(inner.get());
  JoinSpec spec{outer.get(), 0, inner.get(), 0};
  EXPECT_EQ(HashJoin(spec).size(), 9u);
  EXPECT_EQ(TreeJoin(spec, *it).size(), 9u);
  EXPECT_EQ(SortMergeJoin(spec).size(), 9u);
  EXPECT_EQ(TreeMergeJoin(spec, *ot, *it).size(), 9u);
}

TEST(JoinTest, HashProbeJoinUsesExistingIndex) {
  auto outer = testutil::IntRelation("outer", {1, 2, 3});
  auto inner = testutil::IntRelation("inner", {2, 3, 4});
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  auto* hash = static_cast<const HashIndex*>(
      AttachKeyIndex(inner.get(), IndexKind::kChainedBucketHash));
  JoinSpec spec{outer.get(), 0, inner.get(), 0};
  TempList out = HashProbeJoin(spec, *hash);
  EXPECT_EQ(Pairs(out, *outer, *inner),
            (std::vector<std::pair<int32_t, int32_t>>{{2, 2}, {3, 3}}));
}

TEST(JoinTest, PrecomputedJoinFollowsPointers) {
  auto dept = testutil::IntRelation("dept", {100, 200, 300});
  AttachKeyIndex(dept.get(), IndexKind::kTTree);
  Schema emp_schema({{"dept", Type::kPointer}, {"age", Type::kInt32}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, dept.get(), 0).ok());
  auto ops = std::make_shared<FieldKeyOps>(&emp.schema(), 1);
  auto index = CreateIndex(IndexKind::kTTree, ops, IndexConfig());
  index->set_key_fields({1});
  emp.AttachIndex(std::move(index));

  emp.Insert({Value(100), Value(30)});
  emp.Insert({Value(300), Value(40)});
  emp.Insert({Value(100), Value(50)});

  TempList out = PrecomputedJoin(emp, 0);
  ASSERT_EQ(out.size(), 3u);
  std::multiset<int32_t> dept_keys;
  for (size_t r = 0; r < out.size(); ++r) {
    dept_keys.insert(testutil::KeyOf(out.At(r, 1), *dept));
  }
  EXPECT_EQ(dept_keys, (std::multiset<int32_t>{100, 100, 300}));
}

TEST(JoinTest, BuildSortedArrayIsSorted) {
  auto rel = testutil::IntRelation("r", {5, 1, 4, 1, 3});
  AttachKeyIndex(rel.get(), IndexKind::kArray);
  auto array = BuildSortedArray(*rel, 0);
  ASSERT_EQ(array->size(), 5u);
  for (size_t i = 1; i < array->size(); ++i) {
    EXPECT_LE(testutil::KeyOf(array->at(i - 1), *rel),
              testutil::KeyOf(array->at(i), *rel));
  }
}

TEST(JoinTest, BuildJoinHashFindsEverything) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(200));
  AttachKeyIndex(rel.get(), IndexKind::kArray);
  auto hash = BuildJoinHash(*rel, 0);
  EXPECT_EQ(hash->size(), 200u);
  for (int32_t k = 0; k < 200; ++k) {
    EXPECT_NE(hash->Find(Value(k)), nullptr);
  }
}

TEST(JoinTest, CrossSchemaJoinFields) {
  // Join outer.seq (field 1) against inner.key (field 0).
  auto outer = testutil::IntRelation("outer", {100, 101, 102});  // seq 0,1,2
  auto inner = testutil::IntRelation("inner", {1, 2, 3});
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  AttachKeyIndex(inner.get(), IndexKind::kArray);
  JoinSpec spec{outer.get(), 1, inner.get(), 0};
  TempList out = HashJoin(spec);
  EXPECT_EQ(out.size(), 2u);  // seq 1 and 2 match keys 1 and 2
}

}  // namespace
}  // namespace mmdb
