#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/txn/lock_manager.h"

namespace mmdb {
namespace {

using namespace std::chrono_literals;

const LockId kP0{"r", 0};
const LockId kP1{"r", 1};

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kShared, 10ms));
  EXPECT_EQ(lm.GrantedCount(), 2u);
}

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
  EXPECT_FALSE(lm.Acquire(2, kP0, LockMode::kExclusive, 20ms));
  EXPECT_FALSE(lm.Acquire(2, kP0, LockMode::kShared, 20ms));
  // A different partition is independent.
  EXPECT_TRUE(lm.Acquire(2, kP1, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));  // upgrade
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));     // X covers S
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, UpgradeBlockedByOtherSharer) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kShared, 10ms));
  EXPECT_FALSE(lm.Acquire(1, kP0, LockMode::kExclusive, 30ms));
  lm.Release(2, kP0);
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    got = lm.Acquire(2, kP0, LockMode::kExclusive, 2000ms);
  });
  std::this_thread::sleep_for(30ms);
  lm.Release(1, kP0);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(LockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm;
  lm.Acquire(1, kP0, LockMode::kShared, 10ms);
  lm.Acquire(1, kP1, LockMode::kExclusive, 10ms);
  EXPECT_EQ(lm.HeldBy(1).size(), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldBy(1).size(), 0u);
  EXPECT_EQ(lm.GrantedCount(), 0u);
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kExclusive, 10ms));
  EXPECT_TRUE(lm.Acquire(2, kP1, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, WritersNotStarvedByReaders) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  std::atomic<bool> writer_got{false};
  std::thread writer([&] {
    writer_got = lm.Acquire(2, kP0, LockMode::kExclusive, 2000ms);
  });
  std::this_thread::sleep_for(30ms);
  // A new reader must queue behind the waiting writer.
  EXPECT_FALSE(lm.Acquire(3, kP0, LockMode::kShared, 50ms));
  lm.Release(1, kP0);
  writer.join();
  EXPECT_TRUE(writer_got.load());
}

TEST(LockManagerTest, ConcurrentCountersStayConsistent) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> in_critical{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t txn = static_cast<uint64_t>(t) * kIters + i + 1;
        if (!lm.Acquire(txn, kP0, LockMode::kExclusive, 5000ms)) continue;
        const int now = ++in_critical;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        --in_critical;
        lm.Release(txn, kP0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_seen.load(), 1);  // mutual exclusion held throughout
  EXPECT_EQ(lm.GrantedCount(), 0u);
}

// Real multi-thread contention over *overlapping* partition sets: each
// thread repeatedly locks two neighbouring partitions (ascending id order,
// so no deadlock is possible), mixing S and X modes.  Asserts mutual
// exclusion per partition (never a writer with any other holder), that no
// acquisition times out on the deadlock-free path despite heavy overlap
// (fairness: FIFO queues mean nobody starves), and that everything is
// released at the end.
TEST(LockManagerTest, MultiThreadOverlappingPartitionContention) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIters = 150;
  constexpr int kPartitions = 4;

  std::atomic<int> readers[kPartitions] = {};
  std::atomic<int> writers[kPartitions] = {};
  std::atomic<int> timeouts{0};
  std::atomic<int> violations{0};

  auto enter = [&](int p, bool exclusive) {
    if (exclusive) {
      if (writers[p].fetch_add(1) != 0 || readers[p].load() != 0) ++violations;
    } else {
      readers[p].fetch_add(1);
      if (writers[p].load() != 0) ++violations;
    }
  };
  auto leave = [&](int p, bool exclusive) {
    if (exclusive) {
      writers[p].fetch_sub(1);
    } else {
      readers[p].fetch_sub(1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t txn = static_cast<uint64_t>(t) * kIters + i + 1;
        // Overlapping pair (p, p+1), always taken in ascending order.
        const int p = (t + i) % (kPartitions - 1);
        const bool exclusive = (t + i) % 3 == 0;  // ~1/3 writers
        const LockMode mode =
            exclusive ? LockMode::kExclusive : LockMode::kShared;
        const LockId first{"r", static_cast<uint32_t>(p)};
        const LockId second{"r", static_cast<uint32_t>(p + 1)};
        if (!lm.Acquire(txn, first, mode, 10000ms)) {
          ++timeouts;
          continue;
        }
        if (!lm.Acquire(txn, second, mode, 10000ms)) {
          ++timeouts;
          lm.ReleaseAll(txn);
          continue;
        }
        enter(p, exclusive);
        enter(p + 1, exclusive);
        leave(p + 1, exclusive);
        leave(p, exclusive);
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(violations.load(), 0);  // S/X semantics held on every partition
  EXPECT_EQ(timeouts.load(), 0);    // ordered acquisition: no deadlock, no
                                    // starvation within the 10s budget
  EXPECT_EQ(lm.GrantedCount(), 0u);
}

// A writer queued behind readers on one partition must win the lock in
// bounded time even while new readers keep arriving (the no-starvation
// guarantee: new readers queue behind a waiting writer).
TEST(LockManagerTest, WriterCompletesUnderReaderChurn) {
  LockManager lm;
  const LockId part{"r", 0};
  std::atomic<bool> stop{false};
  std::atomic<int> writer_rounds{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t txn = 1000 + t;
      while (!stop.load()) {
        if (lm.Acquire(txn, part, LockMode::kShared, 5000ms)) {
          lm.Release(txn, part);
        }
        txn += 10;
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 25; ++i) {
      const uint64_t txn = 1 + i;
      if (lm.Acquire(txn, part, LockMode::kExclusive, 10000ms)) {
        ++writer_rounds;
        lm.Release(txn, part);
      }
    }
    stop.store(true);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(writer_rounds.load(), 25);
  EXPECT_EQ(lm.GrantedCount(), 0u);
}

TEST(LockManagerTest, RelationLockSentinelDistinct) {
  LockManager lm;
  LockId growth{"r", LockId::kRelationLock};
  EXPECT_TRUE(lm.Acquire(1, growth, LockMode::kExclusive, 10ms));
  // Partition locks are unaffected by the structure lock.
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kExclusive, 10ms));
}

}  // namespace
}  // namespace mmdb
