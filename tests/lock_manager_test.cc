#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/txn/lock_manager.h"

namespace mmdb {
namespace {

using namespace std::chrono_literals;

const LockId kP0{"r", 0};
const LockId kP1{"r", 1};

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kShared, 10ms));
  EXPECT_EQ(lm.GrantedCount(), 2u);
}

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
  EXPECT_FALSE(lm.Acquire(2, kP0, LockMode::kExclusive, 20ms));
  EXPECT_FALSE(lm.Acquire(2, kP0, LockMode::kShared, 20ms));
  // A different partition is independent.
  EXPECT_TRUE(lm.Acquire(2, kP1, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));  // upgrade
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));     // X covers S
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, UpgradeBlockedByOtherSharer) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kShared, 10ms));
  EXPECT_FALSE(lm.Acquire(1, kP0, LockMode::kExclusive, 30ms));
  lm.Release(2, kP0);
  EXPECT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kP0, LockMode::kExclusive, 10ms));
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    got = lm.Acquire(2, kP0, LockMode::kExclusive, 2000ms);
  });
  std::this_thread::sleep_for(30ms);
  lm.Release(1, kP0);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(LockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm;
  lm.Acquire(1, kP0, LockMode::kShared, 10ms);
  lm.Acquire(1, kP1, LockMode::kExclusive, 10ms);
  EXPECT_EQ(lm.HeldBy(1).size(), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldBy(1).size(), 0u);
  EXPECT_EQ(lm.GrantedCount(), 0u);
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kExclusive, 10ms));
  EXPECT_TRUE(lm.Acquire(2, kP1, LockMode::kExclusive, 10ms));
}

TEST(LockManagerTest, WritersNotStarvedByReaders) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kP0, LockMode::kShared, 10ms));
  std::atomic<bool> writer_got{false};
  std::thread writer([&] {
    writer_got = lm.Acquire(2, kP0, LockMode::kExclusive, 2000ms);
  });
  std::this_thread::sleep_for(30ms);
  // A new reader must queue behind the waiting writer.
  EXPECT_FALSE(lm.Acquire(3, kP0, LockMode::kShared, 50ms));
  lm.Release(1, kP0);
  writer.join();
  EXPECT_TRUE(writer_got.load());
}

TEST(LockManagerTest, ConcurrentCountersStayConsistent) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> in_critical{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t txn = static_cast<uint64_t>(t) * kIters + i + 1;
        if (!lm.Acquire(txn, kP0, LockMode::kExclusive, 5000ms)) continue;
        const int now = ++in_critical;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        --in_critical;
        lm.Release(txn, kP0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_seen.load(), 1);  // mutual exclusion held throughout
  EXPECT_EQ(lm.GrantedCount(), 0u);
}

TEST(LockManagerTest, RelationLockSentinelDistinct) {
  LockManager lm;
  LockId growth{"r", LockId::kRelationLock};
  EXPECT_TRUE(lm.Acquire(1, growth, LockMode::kExclusive, 10ms));
  // Partition locks are unaffected by the structure lock.
  EXPECT_TRUE(lm.Acquire(2, kP0, LockMode::kExclusive, 10ms));
}

}  // namespace
}  // namespace mmdb
