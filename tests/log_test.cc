// StableLogBuffer + LogDevice + DiskImage serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/txn/disk_image.h"
#include "src/txn/log.h"
#include "src/txn/log_device.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

LogRecord MakeRecord(uint64_t txn, LogOp op, uint32_t slot,
                     TupleImage payload = {}) {
  LogRecord r;
  r.txn_id = txn;
  r.op = op;
  r.relation = "r";
  r.tid = TupleId{0, slot};
  r.payload = std::move(payload);
  return r;
}

TEST(StableLogBufferTest, AppendAssignsMonotoneLsns) {
  StableLogBuffer buffer;
  uint64_t a = buffer.Append(MakeRecord(1, LogOp::kInsert, 0));
  uint64_t b = buffer.Append(MakeRecord(1, LogOp::kInsert, 1));
  EXPECT_LT(a, b);
  EXPECT_EQ(buffer.last_lsn(), b);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(StableLogBufferTest, UncommittedRecordsDoNotDrain) {
  StableLogBuffer buffer;
  buffer.Append(MakeRecord(1, LogOp::kInsert, 0));
  EXPECT_EQ(buffer.committed_size(), 0u);
  EXPECT_TRUE(buffer.DrainCommitted(10).empty());
  buffer.Commit(1);
  // Data record + the commit marker the buffer appends at Commit().
  EXPECT_EQ(buffer.committed_size(), 2u);
  EXPECT_EQ(buffer.DrainCommitted(10).size(), 2u);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(StableLogBufferTest, AbortRemovesRecords) {
  StableLogBuffer buffer;
  buffer.Append(MakeRecord(1, LogOp::kInsert, 0));
  buffer.Append(MakeRecord(2, LogOp::kInsert, 1));
  buffer.Abort(1);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.Commit(2);
  auto drained = buffer.DrainCommitted(10);
  ASSERT_EQ(drained.size(), 2u);  // data record + commit marker
  EXPECT_EQ(drained[0].txn_id, 2u);
  EXPECT_TRUE(drained[1].is_commit_marker());
}

TEST(StableLogBufferTest, InFlightHeadBlocksDraining) {
  // LSN order must be preserved: a committed record behind an in-flight
  // one waits.
  StableLogBuffer buffer;
  buffer.Append(MakeRecord(1, LogOp::kInsert, 0));  // in-flight
  buffer.Append(MakeRecord(2, LogOp::kInsert, 1));
  buffer.Commit(2);
  EXPECT_TRUE(buffer.DrainCommitted(10).empty());
  buffer.Commit(1);
  EXPECT_EQ(buffer.DrainCommitted(10).size(), 4u);  // 2 data + 2 markers
}

TEST(StableLogBufferTest, PatchFillsTidAndPayload) {
  StableLogBuffer buffer;
  uint64_t lsn = buffer.Append(MakeRecord(1, LogOp::kInsert, 0));
  TupleImage payload{std::byte{1}, std::byte{2}};
  buffer.Patch(lsn, TupleId{3, 9}, &payload);
  buffer.Commit(1);
  auto drained = buffer.DrainCommitted(1);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].tid.partition, 3u);
  EXPECT_EQ(drained[0].tid.slot, 9u);
  EXPECT_EQ(drained[0].payload, payload);
}

TEST(LogDeviceTest, PumpAccumulatesAndPropagates) {
  StableLogBuffer buffer;
  DiskImage disk;
  LogDevice device(&buffer, &disk);

  TupleImage img{std::byte{42}};
  buffer.Append(MakeRecord(1, LogOp::kInsert, 5, img));
  buffer.Commit(1);
  EXPECT_EQ(device.Pump(), 1u);
  EXPECT_EQ(device.accumulated(), 1u);
  // Pending view exposes the unpropagated record.
  EXPECT_EQ(device.PendingFor("r", 0).size(), 1u);
  EXPECT_EQ(device.PendingPartitions("r"), (std::vector<uint32_t>{0}));

  EXPECT_EQ(device.PropagatePartition("r", 0), 1u);
  EXPECT_EQ(device.accumulated(), 0u);
  const PartitionImage* image = disk.ReadPartition("r", 0);
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->at(5), img);
}

TEST(LogDeviceTest, DeleteRecordsEraseSlots) {
  StableLogBuffer buffer;
  DiskImage disk;
  disk.MutablePartition("r", 0)->emplace(5, TupleImage{std::byte{1}});
  LogDevice device(&buffer, &disk);
  buffer.Append(MakeRecord(1, LogOp::kDelete, 5));
  buffer.Commit(1);
  device.RunCycle();
  EXPECT_TRUE(disk.ReadPartition("r", 0)->empty());
}

TEST(LogDeviceTest, ChangeAccumulationCoalesces) {
  // Several updates to the same slot: only the last survives propagation.
  StableLogBuffer buffer;
  DiskImage disk;
  LogDevice device(&buffer, &disk);
  for (int i = 1; i <= 3; ++i) {
    buffer.Append(MakeRecord(i, LogOp::kUpdate, 7,
                             TupleImage{std::byte(static_cast<uint8_t>(i))}));
    buffer.Commit(i);
  }
  device.RunCycle();
  EXPECT_EQ(disk.ReadPartition("r", 0)->at(7), TupleImage{std::byte{3}});
}

TEST(DiskImageTest, CheckpointRoundTripsRelation) {
  auto rel = testutil::IntRelation("r", {10, 20, 30});
  DiskImage disk;
  disk.CheckpointRelation(*rel);
  EXPECT_EQ(disk.Relations(), (std::vector<std::string>{"r"}));
  auto partitions = disk.PartitionsOf("r");
  ASSERT_EQ(partitions.size(), 1u);
  const PartitionImage* image = disk.ReadPartition("r", partitions[0]);
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->size(), 3u);
  EXPECT_GT(disk.TotalBytes(), 0u);
}

TEST(DiskImageTest, EncodeDecodeTuple) {
  Schema schema({{"name", Type::kString},
                 {"id", Type::kInt32},
                 {"score", Type::kDouble},
                 {"big", Type::kInt64}});
  Relation rel("r", schema);
  TupleRef t = rel.Insert(
      {Value("bob"), Value(7), Value(1.5), Value(int64_t{1} << 50)});
  TupleImage image = serialize::EncodeTuple(rel, t);
  std::vector<Value> values;
  std::vector<serialize::PointerFixup> fixups;
  ASSERT_TRUE(serialize::DecodeTuple(rel, image, &values, &fixups).ok());
  EXPECT_EQ(values[0], Value("bob"));
  EXPECT_EQ(values[1], Value(7));
  EXPECT_EQ(values[2], Value(1.5));
  EXPECT_EQ(values[3], Value(int64_t{1} << 50));
  EXPECT_TRUE(fixups.empty());
}

TEST(DiskImageTest, PointerFieldsEncodeAsTupleIds) {
  auto dept = testutil::IntRelation("dept", {100});
  Schema emp_schema({{"dept", Type::kPointer}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, dept.get(), 0).ok());
  TupleRef e = emp.Insert({Value(100)});
  ASSERT_NE(e, nullptr);
  TupleImage image = serialize::EncodeTuple(emp, e);
  std::vector<Value> values;
  std::vector<serialize::PointerFixup> fixups;
  ASSERT_TRUE(serialize::DecodeTuple(emp, image, &values, &fixups).ok());
  ASSERT_EQ(fixups.size(), 1u);
  EXPECT_EQ(fixups[0].target_relation, "dept");
  EXPECT_EQ(values[0].type(), Type::kPointer);
  EXPECT_EQ(values[0].AsPointer(), nullptr);  // resolved later
}

TEST(DiskImageTest, TruncatedImageRejected) {
  Schema schema({{"id", Type::kInt32}});
  Relation rel("r", schema);
  TupleRef t = rel.Insert({Value(1)});
  TupleImage image = serialize::EncodeTuple(rel, t);
  image.pop_back();
  std::vector<Value> values;
  EXPECT_FALSE(serialize::DecodeTuple(rel, image, &values, nullptr).ok());
  image.push_back(std::byte{0});
  image.push_back(std::byte{0});
  EXPECT_FALSE(serialize::DecodeTuple(rel, image, &values, nullptr).ok());
}

TEST(DiskImageTest, SaveAndLoadFile) {
  auto rel = testutil::IntRelation("r", {1, 2, 3});
  DiskImage disk;
  disk.CheckpointRelation(*rel);
  const std::string path = ::testing::TempDir() + "/mmdb_disk_image.bin";
  ASSERT_TRUE(disk.SaveToFile(path).ok());

  DiskImage loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.Relations(), disk.Relations());
  EXPECT_EQ(loaded.TotalBytes(), disk.TotalBytes());
  auto parts = loaded.PartitionsOf("r");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(*loaded.ReadPartition("r", parts[0]),
            *disk.ReadPartition("r", parts[0]));
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.LoadFromFile(path + ".missing").ok());
}

}  // namespace
}  // namespace mmdb
