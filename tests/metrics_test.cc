// Direct unit tests for src/util/metrics: LatencyHistogram bucket
// boundaries and percentile edge cases, the registry's get-or-create
// semantics, and the Prometheus text rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/util/metrics.h"

namespace mmdb {
namespace {

uint64_t BucketSum(const LatencyHistogram::Snapshot& s) {
  uint64_t sum = 0;
  for (uint64_t b : s.buckets) sum += b;
  return sum;
}

// ---- LatencyHistogram buckets ----------------------------------------------

TEST(LatencyHistogramTest, BucketBoundariesAtOneAndTwoMicros) {
  LatencyHistogram h;
  h.Record(0.0);  // <1µs -> bucket 0
  h.Record(0.4);  // rounds to 0µs -> bucket 0
  h.Record(1.0);  // [1,2) -> bucket 1
  h.Record(2.0);  // [2,4) -> bucket 2
  h.Record(3.0);  // [2,4) -> bucket 2
  h.Record(4.0);  // [4,8) -> bucket 3
  auto s = h.Snap();
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(BucketSum(s), s.count);
}

TEST(LatencyHistogramTest, OpenEndedLastBucketCatchesEverythingHuge) {
  LatencyHistogram h;
  // Far beyond the last bounded bucket (~2.1s): must land in the open
  // bucket, not overflow the array.
  h.Record(1e12);
  h.Record(1e15);
  auto s = h.Snap();
  EXPECT_EQ(s.buckets[LatencyHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(s.count, 2u);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero) {
  LatencyHistogram h;
  h.Record(-5.0);
  auto s = h.Snap();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.total_micros, 0u);
}

// ---- Percentile edge cases --------------------------------------------------

TEST(LatencyHistogramTest, PercentileOnEmptyHistogramIsZero) {
  LatencyHistogram h;
  auto s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.PercentileMicros(0.0), 0u);
  EXPECT_EQ(s.PercentileMicros(0.5), 0u);
  EXPECT_EQ(s.PercentileMicros(1.0), 0u);
  EXPECT_EQ(s.MeanMicros(), 0.0);
}

TEST(LatencyHistogramTest, PercentileWithSingleSample) {
  LatencyHistogram h;
  h.Record(100.0);  // bucket [64,128) -> upper bound 128
  auto s = h.Snap();
  EXPECT_EQ(s.PercentileMicros(0.01), 128u);
  EXPECT_EQ(s.PercentileMicros(0.50), 128u);
  EXPECT_EQ(s.PercentileMicros(0.99), 128u);
  EXPECT_EQ(s.max_micros, 100u);
}

TEST(LatencyHistogramTest, PercentileInSaturatedOpenBucketReportsMax) {
  LatencyHistogram h;
  // Every sample beyond the bounded buckets: the open bucket has no upper
  // bound, so the estimate must fall back to the observed max.
  h.Record(3e9);
  h.Record(4e9);
  h.Record(5e9);
  auto s = h.Snap();
  EXPECT_EQ(s.PercentileMicros(0.50), 5000000000u);
  EXPECT_EQ(s.PercentileMicros(0.99), 5000000000u);
}

TEST(LatencyHistogramTest, PercentileClampsOutOfRangeP) {
  LatencyHistogram h;
  for (int i = 0; i < 8; ++i) h.Record(10.0);
  auto s = h.Snap();
  EXPECT_EQ(s.PercentileMicros(-1.0), s.PercentileMicros(0.0));
  EXPECT_EQ(s.PercentileMicros(2.0), s.PercentileMicros(1.0));
}

// ---- Snapshot vs. concurrent Record ----------------------------------------

TEST(LatencyHistogramTest, SnapshotRacesWithRecordersStayCoherent) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) h.Record(double(i % 512));
    });
  }
  go.store(true);
  // Record() bumps the bucket before the count and Snap() reads the count
  // first, so a racing snapshot may see more bucket entries than count —
  // but never fewer.
  for (int i = 0; i < 200; ++i) {
    auto s = h.Snap();
    EXPECT_GE(BucketSum(s), s.count);
  }
  for (auto& t : recorders) t.join();
  auto s = h.Snap();
  EXPECT_EQ(s.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(BucketSum(s), s.count);
  EXPECT_EQ(s.max_micros, 511u);
}

// ---- Registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("mmdb_test_total");
  Counter* b = reg.GetCounter("mmdb_test_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("mmdb_taken"), nullptr);
  EXPECT_EQ(reg.GetGauge("mmdb_taken"), nullptr);
  EXPECT_EQ(reg.GetHistogram("mmdb_taken"), nullptr);
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinct) {
  MetricsRegistry reg;
  Counter* s = reg.GetCounter("mmdb_ops_total{op=\"select\"}");
  Counter* i = reg.GetCounter("mmdb_ops_total{op=\"insert\"}");
  ASSERT_NE(s, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_NE(s, i);
  s->Add(5);
  i->Add(2);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("mmdb_ops_total{op=\"select\"} 5"), std::string::npos);
  EXPECT_NE(text.find("mmdb_ops_total{op=\"insert\"} 2"), std::string::npos);
  // One # TYPE line for the whole family, not one per labeled series.
  size_t first = text.find("# TYPE mmdb_ops_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE mmdb_ops_total counter", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("mmdb_depth");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
  EXPECT_NE(reg.RenderPrometheus().find("mmdb_depth 4"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramIsCumulativeAndEndsAtInf) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.GetHistogram("mmdb_wait_micros");
  h->Record(1.0);   // bucket 1 (le=2)
  h->Record(10.0);  // bucket 4 (le=16)
  h->Record(10.0);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE mmdb_wait_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("mmdb_wait_micros_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mmdb_wait_micros_bucket{le=\"16\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mmdb_wait_micros_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mmdb_wait_micros_sum 21"), std::string::npos);
  EXPECT_NE(text.find("mmdb_wait_micros_count 3"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderedCountersParseBackToTheirValues) {
  MetricsRegistry reg;
  reg.GetCounter("mmdb_a_total")->Add(11);
  reg.GetCounter("mmdb_b_total")->Add(22);
  reg.GetGauge("mmdb_c")->Set(-9);
  std::istringstream in(reg.RenderPrometheus());
  std::string line;
  int parsed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const long long value = std::stoll(line.substr(space + 1));
    if (name == "mmdb_a_total") {
      EXPECT_EQ(value, 11);
      ++parsed;
    } else if (name == "mmdb_b_total") {
      EXPECT_EQ(value, 22);
      ++parsed;
    } else if (name == "mmdb_c") {
      EXPECT_EQ(value, -9);
      ++parsed;
    }
  }
  EXPECT_EQ(parsed, 3);
}

}  // namespace
}  // namespace mmdb
