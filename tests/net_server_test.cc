// End-to-end tests for the network front end (src/net): CRUD over the
// wire, pipelining correctness (no loss, no duplication, out-of-order
// completion), admission control (pipeline bound, service queue, global
// connection cap) with typed error frames and matching rejection counters,
// idle timeouts, raw-socket protocol robustness, the epoll trigger-mode
// matrix, graceful stop-under-load (the TSan/ASan regression for the
// shutdown-drain contract), a 128-connection fan-in, and the shell's SERVE
// command driven through net::Client.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/core/database.h"
#include "src/core/shell.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire_format.h"
#include "src/server/query_service.h"
#include "src/txn/transaction.h"

namespace mmdb {
namespace net {
namespace {

using namespace std::chrono_literals;

WhereClause Eq(std::string field, Value v) {
  return WhereClause{std::move(field), CompareOp::kEq, std::move(v)};
}

SelectSpec SelectById(int id) {
  SelectSpec s;
  s.table = "emp";
  s.where = {Eq("id", Value(id))};
  s.columns = {"emp.name"};
  return s;
}

std::unique_ptr<Database> MakeEmpDb(int rows) {
  auto db = std::make_unique<Database>();
  db->CreateTable("emp", {{"id", Type::kInt32},
                          {"age", Type::kInt32},
                          {"name", Type::kString}});
  for (int i = 0; i < rows; ++i) {
    db->Insert("emp", {Value(i), Value(20 + i % 50),
                       Value("name" + std::to_string(i))});
  }
  return db;
}

/// Database + service + started server on an ephemeral port, torn down in
/// the required order (server before service before database).
struct Harness {
  std::unique_ptr<Database> db;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  Harness() = default;
  Harness(Harness&&) = default;
  Harness& operator=(Harness&&) = default;
  ~Harness() {
    server.reset();
    service.reset();
  }

  uint16_t port() const { return server->port(); }
};

Harness MakeHarness(int rows, ServiceOptions sopts = {},
                    ServerOptions nopts = {}) {
  Harness h;
  h.db = MakeEmpDb(rows);
  h.service = std::make_unique<QueryService>(h.db.get(), sopts);
  h.server = std::make_unique<Server>(h.service.get(), nopts);
  EXPECT_TRUE(h.server->Start().ok());
  return h;
}

/// Reusable cyclic barrier (std::barrier minus the libstdc++ vintage bet).
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}
  void Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const size_t parties_;
  size_t waiting_ = 0;
  size_t generation_ = 0;
};

/// Extracts the value of a Prometheus series from the exposition text, or
/// -1 when the series is absent.
int64_t MetricValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Must be at line start to avoid matching a prefix of a longer name.
    if (pos != 0 && text[pos - 1] != '\n') {
      pos += needle.size();
      continue;
    }
    return std::stoll(text.substr(pos + needle.size()));
  }
  return -1;
}

// ---- Basic round trips ------------------------------------------------------

TEST(NetServerTest, PingAndCrudRoundTrip) {
  Harness h = MakeHarness(10);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  EXPECT_TRUE(c.Ping().ok());

  // Insert a fresh row, read it back, mutate it, delete it.
  Response r = c.Call(Operation(InsertSpec{
      "emp", {Value(100), Value(33), Value("netuser")}}));
  ASSERT_TRUE(r.ok()) << r.result.status.ToString();
  EXPECT_EQ(r.result.rows_affected, 1u);

  r = c.Call(Operation(SelectById(100)));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.result.rows.size(), 1u);
  EXPECT_EQ(r.result.rows[0][0], Value("netuser"));
  EXPECT_EQ(r.result.columns, std::vector<std::string>{"emp.name"});

  UpdateSpec up;
  up.table = "emp";
  up.match = Eq("id", Value(100));
  up.set_field = "age";
  up.set_value = Value(44);
  r = c.Call(Operation(up));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.result.rows_affected, 1u);

  IncrementSpec inc;
  inc.table = "emp";
  inc.match = Eq("id", Value(100));
  inc.field = "age";
  inc.delta = 6;
  r = c.Call(Operation(inc));
  ASSERT_TRUE(r.ok());

  SelectSpec verify = SelectById(100);
  verify.columns = {"emp.age"};
  r = c.Call(Operation(verify));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.result.rows.size(), 1u);
  EXPECT_EQ(r.result.rows[0][0], Value(50));

  DeleteSpec del;
  del.table = "emp";
  del.match = Eq("id", Value(100));
  r = c.Call(Operation(del));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.result.rows_affected, 1u);

  r = c.Call(Operation(SelectById(100)));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.result.rows.empty());
}

TEST(NetServerTest, ErrorStatusesTravelTheWire) {
  Harness h = MakeHarness(5);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  SelectSpec s;
  s.table = "no_such_table";
  Response r = c.Call(Operation(s));
  EXPECT_FALSE(r.is_error);  // executed, failed inside the database
  EXPECT_FALSE(r.result.status.ok());
  EXPECT_FALSE(r.result.status.message().empty());
}

// ---- Pipelining -------------------------------------------------------------

/// Every pipelined request gets exactly one response carrying its id, and
/// each response holds the row its own request asked for — even though the
/// worker pool completes them out of order.
TEST(NetServerTest, PipelinedResponsesMatchRequestsExactly) {
  ServiceOptions sopts;
  sopts.workers = 4;
  ServerOptions nopts;
  nopts.max_pipeline = 128;
  Harness h = MakeHarness(64, sopts, nopts);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());

  constexpr int kOps = 50;
  std::map<uint64_t, int> want;  // request id -> emp id asked for
  for (int i = 0; i < kOps; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(c.Send(Operation(SelectById(i % 64)), &id).ok());
    want.emplace(id, i % 64);
  }
  EXPECT_EQ(c.inflight(), static_cast<uint64_t>(kOps));

  std::set<uint64_t> seen;
  for (int i = 0; i < kOps; ++i) {
    Response r;
    ASSERT_TRUE(c.Receive(&r).ok());
    ASSERT_TRUE(r.ok()) << r.result.status.ToString();
    ASSERT_TRUE(want.count(r.request_id)) << "unknown id " << r.request_id;
    EXPECT_TRUE(seen.insert(r.request_id).second)
        << "duplicate response for id " << r.request_id;
    ASSERT_EQ(r.result.rows.size(), 1u);
    EXPECT_EQ(r.result.rows[0][0],
              Value("name" + std::to_string(want[r.request_id])));
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kOps));  // none lost
  EXPECT_EQ(c.inflight(), 0u);
}

// ---- Admission control ------------------------------------------------------

/// With the single worker stalled on a relation X lock held by the test,
/// exactly max_pipeline requests are admitted and the rest are shed with
/// typed kOverloaded frames carrying their request ids; the rejection
/// counter matches.  Releasing the lock completes the admitted ones.
TEST(NetServerTest, PipelineBoundShedsWithTypedErrors) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.lock_timeout = 10000ms;  // the stall must outlive the assertion phase
  ServerOptions nopts;
  nopts.max_pipeline = 2;
  Harness h = MakeHarness(8, sopts, nopts);

  auto txn = h.db->Begin();
  ASSERT_TRUE(txn->LockRelationExclusive("emp").ok());

  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  constexpr int kOps = 10;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(c.Send(Operation(SelectById(1))).ok());
  }

  // The loop dispatches the pipeline in arrival order: 2 admitted (worker
  // blocked on the lock), 8 shed immediately.
  std::set<uint64_t> shed_ids;
  for (int i = 0; i < kOps - 2; ++i) {
    Response r;
    ASSERT_TRUE(c.Receive(&r).ok());
    ASSERT_TRUE(r.is_error);
    EXPECT_EQ(r.error_code, WireErrorCode::kOverloaded);
    EXPECT_NE(r.request_id, 0u);  // the shed request learns *which* died
    EXPECT_TRUE(shed_ids.insert(r.request_id).second);
  }

  txn->Abort();  // release the stall; the 2 admitted selects now run
  for (int i = 0; i < 2; ++i) {
    Response r;
    ASSERT_TRUE(c.Receive(&r).ok());
    EXPECT_TRUE(r.ok()) << r.result.status.ToString();
  }

  const std::string metrics = h.service->MetricsText();
  EXPECT_EQ(MetricValue(metrics,
                        "mmdb_net_rejected_total{reason=\"pipeline\"}"),
            kOps - 2);
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_requests_total"), kOps);
}

/// Service-queue overflow (Submit's kResourceExhausted) becomes a typed
/// kOverloaded frame and bumps the queue rejection counter.
TEST(NetServerTest, ServiceQueueFullShedsWithTypedErrors) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.queue_depth = 1;
  sopts.lock_timeout = 10000ms;
  ServerOptions nopts;
  nopts.max_pipeline = 64;  // pipeline bound out of the way
  Harness h = MakeHarness(8, sopts, nopts);

  auto txn = h.db->Begin();
  ASSERT_TRUE(txn->LockRelationExclusive("emp").ok());

  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(c.Send(Operation(SelectById(1))).ok());
  }

  // At most 2 ops can be admitted (one stalling the worker, one in the
  // depth-1 queue — only one if the worker hadn't popped yet); everything
  // else is shed immediately, so the first kOps-2 responses are errors.
  int shed = 0;
  for (int i = 0; i < kOps - 2; ++i) {
    Response r;
    ASSERT_TRUE(c.Receive(&r).ok());
    ASSERT_TRUE(r.is_error);
    EXPECT_EQ(r.error_code, WireErrorCode::kOverloaded);
    ++shed;
  }

  txn->Abort();  // the admitted remainder can now complete
  int completed = 0;
  for (int i = kOps - 2; i < kOps; ++i) {
    Response r;
    ASSERT_TRUE(c.Receive(&r).ok());
    if (r.is_error) {
      EXPECT_EQ(r.error_code, WireErrorCode::kOverloaded);
      ++shed;
    } else {
      EXPECT_TRUE(r.result.status.ok());
      ++completed;
    }
  }
  EXPECT_GE(completed, 1);
  EXPECT_EQ(shed + completed, kOps);

  const std::string metrics = h.service->MetricsText();
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_rejected_total{reason=\"queue\"}"),
            shed);
}

TEST(NetServerTest, ConnectionCapShedsWithTypedError) {
  ServerOptions nopts;
  nopts.max_connections = 2;
  Harness h = MakeHarness(4, {}, nopts);

  Client a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(a.Ping().ok());  // both registered before the third arrives
  ASSERT_TRUE(b.Ping().ok());

  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());  // TCP-accepted...
  Response r;
  ASSERT_TRUE(c.Receive(&r).ok());  // ...then shed with a typed frame
  EXPECT_TRUE(r.is_error);
  EXPECT_EQ(r.error_code, WireErrorCode::kTooManyConnections);
  EXPECT_EQ(r.request_id, 0u);  // connection-level, no request id
  EXPECT_EQ(c.Receive(&r).code(), StatusCode::kAborted);  // then closed

  // The admitted pair still works.
  EXPECT_TRUE(a.Call(Operation(SelectById(1))).ok());
  EXPECT_TRUE(b.Ping().ok());

  const std::string metrics = h.service->MetricsText();
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_rejected_connections_total"), 1);
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_accepted_total"), 2);

  // Capacity freed by a disconnect is reusable (after the loop reaps the
  // old socket, which it learns about asynchronously).
  a.Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 200 && !admitted; ++attempt) {
    Client d;
    ASSERT_TRUE(d.Connect("127.0.0.1", h.port()).ok());
    admitted = d.Ping().ok();
    if (!admitted) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(admitted);
}

TEST(NetServerTest, IdleConnectionsAreReaped) {
  ServerOptions nopts;
  nopts.idle_timeout = 50ms;
  Harness h = MakeHarness(4, {}, nopts);

  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  EXPECT_TRUE(c.Ping().ok());

  // Go quiet; the sweeper should close us well within the receive budget.
  c.set_receive_timeout(5000ms);
  Response r;
  EXPECT_EQ(c.Receive(&r).code(), StatusCode::kAborted);
  EXPECT_GE(MetricValue(h.service->MetricsText(),
                        "mmdb_net_idle_closed_total"),
            1);
}

// ---- Protocol robustness (raw socket) ---------------------------------------

/// Minimal raw TCP peer for speaking deliberately broken bytes.
class RawPeer {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool SendAll(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }
  /// Reads until EOF (the server closes after a protocol error) and returns
  /// everything received.
  std::string ReadToEof() {
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }
  ssize_t Recv(char* buf, size_t n) { return ::recv(fd_, buf, n, 0); }
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
};

std::string ValidRequestFrame(uint64_t id) {
  std::string payload, frame;
  EncodeOperation(Operation(SelectById(1)), &payload);
  EncodeFrame(FrameType::kRequest, id, 0, payload, &frame);
  return frame;
}

/// The server's reply to a broken stream must be one well-formed kError
/// frame with kProtocolError, then EOF.
void ExpectProtocolErrorThenClose(const std::string& wire_reply) {
  FrameBuffer buf;
  buf.Append(wire_reply.data(), wire_reply.size());
  Frame f;
  std::string error;
  ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kFrame)
      << "server reply not a valid frame";
  EXPECT_EQ(f.type, FrameType::kError);
  WireErrorCode code;
  std::string message;
  ASSERT_TRUE(DecodeError(f.payload, &code, &message));
  EXPECT_EQ(code, WireErrorCode::kProtocolError);
  EXPECT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kNeedMore);
}

TEST(NetServerTest, GarbageBytesGetTypedErrorAndClose) {
  Harness h = MakeHarness(4);
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  // Neither the MMDB magic nor an HTTP verb: sniffed as binary, rejected as
  // a corrupt frame.  ("GET ..." would be served by the HTTP scrape shim.)
  ASSERT_TRUE(p.SendAll("SMTP HELO nope\r\n\r\n"));
  ExpectProtocolErrorThenClose(p.ReadToEof());
  EXPECT_GE(MetricValue(h.service->MetricsText(),
                        "mmdb_net_protocol_errors_total"),
            1);
}

TEST(NetServerTest, CorruptedFrameBytesGetTypedErrorAndClose) {
  Harness h = MakeHarness(4);
  const std::string frame = ValidRequestFrame(9);
  // Sweep a representative set of positions: magic, version, type, id,
  // length, CRC, payload.
  for (size_t pos : {size_t{0}, size_t{4}, size_t{5}, size_t{9}, size_t{17},
                     size_t{21}, frame.size() - 1}) {
    std::string corrupt = frame;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    RawPeer p;
    ASSERT_TRUE(p.Connect(h.port()));
    ASSERT_TRUE(p.SendAll(corrupt));
    // A length-field flip can leave the frame looking merely incomplete;
    // half-closing our write side turns that case into a server-side EOF
    // close (empty reply) instead of a wait.
    p.ShutdownWrite();
    const std::string reply = p.ReadToEof();
    if (!reply.empty()) ExpectProtocolErrorThenClose(reply);
  }
}

TEST(NetServerTest, TruncatedFrameThenEofClosesCleanly) {
  Harness h = MakeHarness(4);
  const std::string frame = ValidRequestFrame(3);
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  ASSERT_TRUE(p.SendAll(frame.substr(0, frame.size() / 2)));
  p.ShutdownWrite();  // peer gives up mid-frame
  // The server must just close, not stall or misparse.  (EOF with a
  // partial frame buffered is not a protocol error.)
  EXPECT_EQ(p.ReadToEof(), "");
  // Server is still healthy for the next client.
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  EXPECT_TRUE(c.Ping().ok());
}

TEST(NetServerTest, OversizedDeclaredPayloadIsRejected) {
  Harness h = MakeHarness(4);
  std::string frame = ValidRequestFrame(5);
  const uint32_t huge = kMaxPayload + 1;
  frame[16] = static_cast<char>(huge);
  frame[17] = static_cast<char>(huge >> 8);
  frame[18] = static_cast<char>(huge >> 16);
  frame[19] = static_cast<char>(huge >> 24);
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  ASSERT_TRUE(p.SendAll(frame));
  ExpectProtocolErrorThenClose(p.ReadToEof());
}

/// A frame whose CRC is fine but whose payload is not a decodable
/// operation: typed error carrying the request id, connection survives.
TEST(NetServerTest, MalformedPayloadInValidFrameKeepsConnectionOpen) {
  Harness h = MakeHarness(4);
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  std::string bad;
  EncodeFrame(FrameType::kRequest, 77, 0, "not an operation", &bad);
  std::string ping;
  EncodeFrame(FrameType::kPing, 78, 0, {}, &ping);
  ASSERT_TRUE(p.SendAll(bad + ping));

  // Expect exactly: kError(id=77, kProtocolError) then kPong(id=78) — the
  // framing stayed intact so the connection was not condemned.
  char buf[4096];
  FrameBuffer fb;
  Frame f;
  std::string error;
  int frames = 0;
  while (frames < 2) {
    const ssize_t n = p.Recv(buf, sizeof(buf));
    if (n <= 0) break;
    fb.Append(buf, static_cast<size_t>(n));
    while (fb.Next(&f, &error) == FrameBuffer::Result::kFrame) {
      if (frames == 0) {
        EXPECT_EQ(f.type, FrameType::kError);
        EXPECT_EQ(f.request_id, 77u);
        WireErrorCode code;
        std::string message;
        ASSERT_TRUE(DecodeError(f.payload, &code, &message));
        EXPECT_EQ(code, WireErrorCode::kProtocolError);
      } else {
        EXPECT_EQ(f.type, FrameType::kPong);
        EXPECT_EQ(f.request_id, 78u);
      }
      ++frames;
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(NetServerTest, UnexpectedFrameTypeIsAProtocolError) {
  Harness h = MakeHarness(4);
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  std::string frame;
  EncodeFrame(FrameType::kResponse, 12, 0, "", &frame);  // clients must not
  ASSERT_TRUE(p.SendAll(frame));
  ExpectProtocolErrorThenClose(p.ReadToEof());
}

// ---- Trigger-mode matrix ----------------------------------------------------

/// Level/edge-triggered and oneshot modes must be behaviorally identical,
/// including under responses large enough to exercise partial writes and
/// EPOLLOUT rearming.
TEST(NetServerTest, TriggerModeMatrix) {
  for (const bool edge : {false, true}) {
    for (const bool oneshot : {false, true}) {
      SCOPED_TRACE(std::string("edge=") + (edge ? "1" : "0") + " oneshot=" +
                   (oneshot ? "1" : "0"));
      ServerOptions nopts;
      nopts.edge_triggered = edge;
      nopts.oneshot = oneshot;
      Harness h = MakeHarness(0, {}, nopts);
      // Bulk rows with fat strings so the full-table select's response
      // frame far exceeds a socket buffer's worth of immediate write.
      const std::string blob(512, 'x');
      for (int i = 0; i < 2000; ++i) {
        h.db->Insert("emp", {Value(i), Value(i % 90), Value(blob)});
      }

      Client c;
      ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(c.Send(Operation(SelectById(i))).ok());
      }
      SelectSpec all;
      all.table = "emp";
      ASSERT_TRUE(c.Send(Operation(all)).ok());
      int big = 0, small = 0;
      for (int i = 0; i < 9; ++i) {
        Response r;
        ASSERT_TRUE(c.Receive(&r).ok());
        ASSERT_TRUE(r.ok()) << r.result.status.ToString();
        if (r.result.rows.size() == 2000) {
          ++big;
        } else {
          EXPECT_EQ(r.result.rows.size(), 1u);
          ++small;
        }
      }
      EXPECT_EQ(big, 1);
      EXPECT_EQ(small, 8);
      EXPECT_TRUE(c.Ping().ok());
    }
  }
}

// ---- Shutdown ---------------------------------------------------------------

/// The satellite-1 regression: Stop() must drain every in-flight Submit
/// callback before returning, so tearing down the QueryService and the
/// Database immediately afterwards cannot race a completion.  Run under
/// TSan/ASan in CI.
TEST(NetServerTest, StopUnderLoadThenImmediateTeardown) {
  ServiceOptions sopts;
  sopts.workers = 4;
  auto db = MakeEmpDb(64);
  auto service = std::make_unique<QueryService>(db.get(), sopts);
  auto server = std::make_unique<Server>(service.get());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  Barrier ready(5);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Client c;
      if (!c.Connect("127.0.0.1", port).ok()) {
        ready.Arrive();
        return;
      }
      c.set_receive_timeout(100ms);
      ready.Arrive();
      uint64_t sent = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Keep a pipeline of ~8 outstanding; drain opportunistically.
        if (c.inflight() < 8) {
          if (!c.Send(Operation(SelectById((t * 13) % 64))).ok()) break;
          ++sent;
        }
        Response r;
        Status s = c.Receive(&r);
        if (s.ok()) {
          if (!r.is_error) completed.fetch_add(1, std::memory_order_relaxed);
        } else if (s.code() != StatusCode::kResourceExhausted) {
          break;  // connection torn down by Stop — expected
        }
      }
    });
  }
  ready.Arrive();
  std::this_thread::sleep_for(100ms);

  // The regression: stop the server mid-load and immediately destroy the
  // service and database underneath it.
  server->Stop();
  EXPECT_FALSE(server->running());
  server.reset();
  service->Shutdown();
  service.reset();
  db.reset();

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  EXPECT_GT(completed.load(), 0);
}

TEST(NetServerTest, StopIsIdempotentCloseIsCleanAndRestartWorks) {
  Harness h = MakeHarness(4);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(c.Ping().ok());
  h.server->Stop();
  h.server->Stop();  // idempotent
  EXPECT_FALSE(h.server->running());
  // The client observes a clean close, not a hang.
  c.set_receive_timeout(2000ms);
  Response r;
  EXPECT_EQ(c.Receive(&r).code(), StatusCode::kAborted);

  // A stopped server can start again (fresh ephemeral port).
  ASSERT_TRUE(h.server->Start().ok());
  Client c2;
  ASSERT_TRUE(c2.Connect("127.0.0.1", h.server->port()).ok());
  EXPECT_TRUE(c2.Ping().ok());
}

// ---- Scale ------------------------------------------------------------------

/// 128 concurrent connections, all alive at once (barrier-gated), each
/// running a pipelined burst; every response matches its request and the
/// connection high-water mark records the fan-in.
TEST(NetServerTest, OneHundredTwentyEightConcurrentConnections) {
  ServiceOptions sopts;
  sopts.workers = 4;
  sopts.queue_depth = 4096;
  ServerOptions nopts;
  nopts.max_connections = 256;
  nopts.max_pipeline = 16;
  Harness h = MakeHarness(64, sopts, nopts);

  constexpr int kConns = 128;
  constexpr int kOpsPerConn = 8;
  Barrier all_connected(kConns);
  std::atomic<int> failures{0};
  std::atomic<int> responses{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      Client c;
      if (!c.Connect("127.0.0.1", h.port()).ok() || !c.Ping().ok()) {
        failures.fetch_add(1);
        all_connected.Arrive();
        return;
      }
      all_connected.Arrive();  // every socket open before any work/close
      std::map<uint64_t, int> want;
      for (int i = 0; i < kOpsPerConn; ++i) {
        uint64_t id = 0;
        if (!c.Send(Operation(SelectById((t + i) % 64)), &id).ok()) {
          failures.fetch_add(1);
          return;
        }
        want.emplace(id, (t + i) % 64);
      }
      for (int i = 0; i < kOpsPerConn; ++i) {
        Response r;
        if (!c.Receive(&r).ok() || !r.ok() || !want.count(r.request_id) ||
            r.result.rows.size() != 1 ||
            r.result.rows[0][0] !=
                Value("name" + std::to_string(want[r.request_id]))) {
          failures.fetch_add(1);
          return;
        }
        responses.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(responses.load(), kConns * kOpsPerConn);

  const std::string metrics = h.service->MetricsText();
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_connections_hwm"), kConns);
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_accepted_total"), kConns);
  EXPECT_EQ(MetricValue(metrics, "mmdb_net_rejected_connections_total"), 0);
}

// ---- Observability ----------------------------------------------------------

TEST(NetServerTest, NetMetricsAppearInServiceMetricsText) {
  Harness h = MakeHarness(8);
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(c.Call(Operation(SelectById(1))).ok());
  ASSERT_TRUE(c.Ping().ok());

  const std::string text = h.service->MetricsText();
  for (const char* series :
       {"mmdb_net_accepted_total", "mmdb_net_connections",
        "mmdb_net_connections_hwm", "mmdb_net_frames_in_total",
        "mmdb_net_frames_out_total", "mmdb_net_bytes_in_total",
        "mmdb_net_bytes_out_total", "mmdb_net_requests_total",
        "mmdb_net_responses_total", "mmdb_net_pipeline_depth_hwm"}) {
    EXPECT_GE(MetricValue(text, series), 0) << series << " missing:\n";
  }
  EXPECT_GE(MetricValue(text, "mmdb_net_requests_total"), 1);
  EXPECT_GE(MetricValue(text, "mmdb_net_responses_total"), 1);
  EXPECT_GE(MetricValue(text, "mmdb_net_bytes_in_total"), 24);
  // Histograms render with _count suffixes.
  EXPECT_NE(text.find("mmdb_net_request_micros"), std::string::npos);
  EXPECT_NE(text.find("mmdb_net_decode_micros"), std::string::npos);
}

// ---- Shell SERVE ------------------------------------------------------------

TEST(NetServerTest, ShellServeSmokeTest) {
  Database db;
  CommandShell shell(&db);
  ASSERT_EQ(shell.Execute("CREATE TABLE kv (k INT, v STRING)"),
            "ok: table kv (2 fields)");

  const std::string reply = shell.Execute("SERVE 0");
  ASSERT_EQ(reply.rfind("ok: serving on port ", 0), 0u) << reply;
  const uint16_t port = shell.serving_port();
  ASSERT_NE(port, 0);
  EXPECT_EQ(reply, "ok: serving on port " + std::to_string(port));

  // Remote writes land in the shell's database...
  Client c;
  ASSERT_TRUE(c.Connect("127.0.0.1", port).ok());
  Response r = c.Call(Operation(InsertSpec{"kv", {Value(1), Value("wire")}}));
  ASSERT_TRUE(r.ok()) << r.result.status.ToString();

  // ...visible to local statements, and vice versa.
  EXPECT_NE(shell.Execute("SELECT kv.v FROM kv WHERE k = 1").find("wire"),
            std::string::npos);
  ASSERT_EQ(shell.Execute("INSERT INTO kv VALUES (2, 'local')"),
            "ok: 1 row");
  SelectSpec s;
  s.table = "kv";
  s.where = {Eq("k", Value(2))};
  s.columns = {"kv.v"};
  r = c.Call(Operation(s));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.result.rows.size(), 1u);
  EXPECT_EQ(r.result.rows[0][0], Value("local"));

  EXPECT_EQ(shell.Execute("SERVE 1"), "error: already serving on port " +
                                          std::to_string(port));
  EXPECT_EQ(shell.Execute("SERVE OFF"), "ok: serve off");
  EXPECT_EQ(shell.serving_port(), 0);
  Response after;
  EXPECT_FALSE(c.Receive(&after).ok());  // server gone
  EXPECT_EQ(shell.Execute("SERVE OFF"), "error: not serving");

  // Serving again on a fresh ephemeral port works.
  ASSERT_EQ(shell.Execute("SERVE 0").rfind("ok: serving", 0), 0u);
  Client c2;
  ASSERT_TRUE(c2.Connect("127.0.0.1", shell.serving_port()).ok());
  EXPECT_TRUE(c2.Ping().ok());
}

}  // namespace
}  // namespace net
}  // namespace mmdb
