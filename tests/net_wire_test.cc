// Wire-protocol codec tests: frame encode/decode roundtrips for every
// operation kind, incremental (byte-at-a-time) frame assembly, and the
// robustness sweep the durability layer pioneered — every single byte of a
// valid frame is corrupted in turn and the decoder must flag it, never
// crash, over-read, or silently accept.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/wire_format.h"

namespace mmdb {
namespace net {
namespace {

WhereClause Eq(std::string field, Value v) {
  return WhereClause{std::move(field), CompareOp::kEq, std::move(v)};
}

Operation RoundTrip(const Operation& op) {
  std::string payload;
  EXPECT_TRUE(EncodeOperation(op, &payload));
  Operation out;
  EXPECT_TRUE(DecodeOperation(payload, &out));
  return out;
}

// ---- Operation roundtrips ---------------------------------------------------

TEST(NetWireTest, SelectRoundTrip) {
  SelectSpec s;
  s.table = "emp";
  s.where = {Eq("age", Value(30)),
             WhereClause{"name", CompareOp::kNe, Value("bob")}};
  JoinClause j;
  j.table = "dept";
  j.left_field = "dept_id";
  j.right_field = "id";
  j.where = {WhereClause{"floor", CompareOp::kGe, Value(int64_t{2})}};
  s.join = j;
  s.columns = {"emp.name", "dept.name"};
  s.distinct = true;
  s.ordered = true;
  s.analyze = true;

  Operation out = RoundTrip(Operation(s));
  ASSERT_EQ(KindOf(out), OpKind::kSelect);
  const auto& d = std::get<SelectSpec>(out);
  EXPECT_EQ(d.table, "emp");
  ASSERT_EQ(d.where.size(), 2u);
  EXPECT_EQ(d.where[0].field, "age");
  EXPECT_EQ(d.where[0].op, CompareOp::kEq);
  EXPECT_EQ(d.where[0].value, Value(30));
  EXPECT_EQ(d.where[1].value, Value("bob"));
  ASSERT_TRUE(d.join.has_value());
  EXPECT_EQ(d.join->table, "dept");
  EXPECT_EQ(d.join->left_field, "dept_id");
  EXPECT_EQ(d.join->right_field, "id");
  ASSERT_EQ(d.join->where.size(), 1u);
  EXPECT_EQ(d.join->where[0].value, Value(int64_t{2}));
  EXPECT_EQ(d.columns, (std::vector<std::string>{"emp.name", "dept.name"}));
  EXPECT_TRUE(d.distinct);
  EXPECT_TRUE(d.ordered);
  EXPECT_TRUE(d.analyze);
}

TEST(NetWireTest, MinimalSelectRoundTrip) {
  SelectSpec s;
  s.table = "t";
  Operation out = RoundTrip(Operation(s));
  const auto& d = std::get<SelectSpec>(out);
  EXPECT_EQ(d.table, "t");
  EXPECT_TRUE(d.where.empty());
  EXPECT_FALSE(d.join.has_value());
  EXPECT_FALSE(d.distinct);
}

TEST(NetWireTest, InsertRoundTripAllValueTypes) {
  InsertSpec s;
  s.table = "mix";
  s.values = {Value(7), Value(int64_t{1} << 40), Value(3.25),
              Value(std::string("str\0embedded", 12)), Value("")};
  Operation out = RoundTrip(Operation(s));
  const auto& d = std::get<InsertSpec>(out);
  ASSERT_EQ(d.values.size(), 5u);
  EXPECT_EQ(d.values[0], Value(7));
  EXPECT_EQ(d.values[1], Value(int64_t{1} << 40));
  EXPECT_EQ(d.values[2], Value(3.25));
  EXPECT_EQ(d.values[3].AsString(), std::string("str\0embedded", 12));
  EXPECT_EQ(d.values[4].AsString(), "");
}

TEST(NetWireTest, UpdateIncrementDeleteRoundTrip) {
  UpdateSpec u;
  u.table = "emp";
  u.match = Eq("id", Value(3));
  u.set_field = "name";
  u.set_value = Value("zed");
  auto du = std::get<UpdateSpec>(RoundTrip(Operation(u)));
  EXPECT_EQ(du.set_field, "name");
  EXPECT_EQ(du.set_value, Value("zed"));
  EXPECT_EQ(du.match.field, "id");

  IncrementSpec i;
  i.table = "emp";
  i.match = Eq("id", Value(3));
  i.field = "age";
  i.delta = -12345678901LL;
  auto di = std::get<IncrementSpec>(RoundTrip(Operation(i)));
  EXPECT_EQ(di.delta, -12345678901LL);
  EXPECT_EQ(di.field, "age");

  DeleteSpec del;
  del.table = "emp";
  del.match = WhereClause{"age", CompareOp::kLt, Value(18)};
  auto dd = std::get<DeleteSpec>(RoundTrip(Operation(del)));
  EXPECT_EQ(dd.match.op, CompareOp::kLt);
  EXPECT_EQ(dd.match.value, Value(18));
}

TEST(NetWireTest, PointerValuesAreNotEncodable) {
  InsertSpec s;
  s.table = "t";
  s.values = {Value(TupleRef(nullptr))};
  std::string payload;
  EXPECT_FALSE(EncodeOperation(Operation(s), &payload));
}

// ---- OpResult roundtrip -----------------------------------------------------

TEST(NetWireTest, OpResultRoundTrip) {
  OpResult r;
  r.status = Status::Aborted("lock timeout on emp");
  r.columns = {"emp.name", "emp.age"};
  r.rows = {{Value("al"), Value(67)}, {Value("bo"), Value(41)}};
  r.plan = "select(emp) via hash";
  r.analyze = "tree";
  r.rows_affected = 2;
  r.attempts = 3;
  r.queue_us = 120;
  r.lock_us = 4500;
  r.exec_us = 77;
  r.commit_us = 0;
  r.cache_outcome = CacheOutcome::kMiss;

  std::string payload;
  ASSERT_TRUE(EncodeOpResult(r, &payload));
  OpResult out;
  ASSERT_TRUE(DecodeOpResult(payload, &out));
  EXPECT_EQ(out.status.code(), StatusCode::kAborted);
  EXPECT_EQ(out.status.message(), "lock timeout on emp");
  EXPECT_EQ(out.columns, r.columns);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0][0], Value("al"));
  EXPECT_EQ(out.rows[1][1], Value(41));
  EXPECT_EQ(out.plan, r.plan);
  EXPECT_EQ(out.analyze, r.analyze);
  EXPECT_EQ(out.rows_affected, 2u);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.queue_us, 120u);
  EXPECT_EQ(out.lock_us, 4500u);
  EXPECT_EQ(out.exec_us, 77u);
  EXPECT_EQ(out.commit_us, 0u);
  EXPECT_EQ(out.cache_outcome, CacheOutcome::kMiss);
}

TEST(NetWireTest, PointerResultValuesShipAsText) {
  // Materialized foreign-key columns hold Type::kPointer values; the wire
  // form downgrades them to their rendering instead of failing the row.
  OpResult r;
  r.columns = {"emp.dept_id"};
  r.rows = {{Value(TupleRef(nullptr))}};
  std::string payload;
  ASSERT_TRUE(EncodeOpResult(r, &payload));
  OpResult out;
  ASSERT_TRUE(DecodeOpResult(payload, &out));
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0][0].type(), Type::kString);
}

// ---- Error codec ------------------------------------------------------------

TEST(NetWireTest, ErrorRoundTrip) {
  std::string payload;
  EncodeError(WireErrorCode::kOverloaded, "pipeline limit reached", &payload);
  WireErrorCode code;
  std::string message;
  ASSERT_TRUE(DecodeError(payload, &code, &message));
  EXPECT_EQ(code, WireErrorCode::kOverloaded);
  EXPECT_EQ(message, "pipeline limit reached");
}

// ---- Frame layer ------------------------------------------------------------

constexpr uint64_t kTestTraceId = 0x1122334455667788ULL;

std::string EncodedRequestFrame() {
  SelectSpec s;
  s.table = "emp";
  s.where = {Eq("age", Value(30))};
  std::string payload;
  EncodeOperation(Operation(s), &payload);
  std::string frame;
  EncodeFrame(FrameType::kRequest, 42, kTestTraceId, payload, &frame);
  return frame;
}

TEST(NetWireTest, FrameRoundTrip) {
  const std::string bytes = EncodedRequestFrame();
  FrameBuffer buf;
  buf.Append(bytes.data(), bytes.size());
  Frame f;
  std::string error;
  ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kFrame) << error;
  EXPECT_EQ(f.type, FrameType::kRequest);
  EXPECT_EQ(f.request_id, 42u);
  EXPECT_EQ(f.trace_id, kTestTraceId);
  Operation op;
  ASSERT_TRUE(DecodeOperation(f.payload, &op));
  EXPECT_EQ(std::get<SelectSpec>(op).table, "emp");
  EXPECT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kNeedMore);
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(NetWireTest, ByteAtATimeAssembly) {
  const std::string bytes = EncodedRequestFrame();
  FrameBuffer buf;
  Frame f;
  std::string error;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    buf.Append(bytes.data() + i, 1);
    ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kNeedMore)
        << "at byte " << i;
  }
  buf.Append(bytes.data() + bytes.size() - 1, 1);
  ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kFrame);
  EXPECT_EQ(f.request_id, 42u);
}

TEST(NetWireTest, PipelinedFramesDecodeInOrder) {
  std::string bytes;
  for (uint64_t id = 1; id <= 5; ++id) {
    EncodeFrame(FrameType::kPing, id, id * 7, {}, &bytes);
  }
  FrameBuffer buf;
  buf.Append(bytes.data(), bytes.size());
  Frame f;
  std::string error;
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kFrame);
    EXPECT_EQ(f.request_id, id);
    EXPECT_EQ(f.trace_id, id * 7);
    EXPECT_EQ(f.type, FrameType::kPing);
  }
  EXPECT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kNeedMore);
}

/// The PR 5 WAL discipline applied to the wire: flipping any single byte
/// of a valid frame must be detected.  Bit flips hit the magic, header
/// fields (covered by the CRC), the stored CRC itself, or the payload —
/// all of them must decode as corrupt, none may crash or over-read.
TEST(NetWireTest, EveryByteFlipIsDetected) {
  const std::string bytes = EncodedRequestFrame();
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ bit);
      FrameBuffer buf;
      buf.Append(corrupt.data(), corrupt.size());
      Frame f;
      std::string error;
      const auto r = buf.Next(&f, &error);
      // kNeedMore is acceptable only when the flip *grew* the declared
      // payload length (offset 24..27): the frame then looks incomplete,
      // and the CRC rejects it once "enough" bytes arrive.
      if (i >= 24 && i < 28) {
        if (r == FrameBuffer::Result::kNeedMore) {
          // Feed filler until the inflated length is satisfied; it must
          // then fail the CRC.
          std::string filler(1 << 20, '\0');
          FrameBuffer buf2;
          buf2.Append(corrupt.data(), corrupt.size());
          Frame f2;
          for (int rounds = 0; rounds < 20; ++rounds) {
            buf2.Append(filler.data(), filler.size());
            const auto r2 = buf2.Next(&f2, &error);
            if (r2 == FrameBuffer::Result::kNeedMore) continue;
            EXPECT_EQ(r2, FrameBuffer::Result::kCorrupt)
                << "inflated-length frame verified at byte " << i;
            break;
          }
          continue;
        }
        EXPECT_EQ(r, FrameBuffer::Result::kCorrupt) << "at byte " << i;
        continue;
      }
      EXPECT_EQ(r, FrameBuffer::Result::kCorrupt)
          << "byte " << i << " flip 0x" << std::hex << int(bit)
          << " went undetected";
    }
  }
}

TEST(NetWireTest, OversizedPayloadLengthIsCorrupt) {
  std::string bytes = EncodedRequestFrame();
  const uint32_t huge = kMaxPayload + 1;
  bytes[24] = static_cast<char>(huge);
  bytes[25] = static_cast<char>(huge >> 8);
  bytes[26] = static_cast<char>(huge >> 16);
  bytes[27] = static_cast<char>(huge >> 24);
  FrameBuffer buf;
  buf.Append(bytes.data(), bytes.size());
  Frame f;
  std::string error;
  EXPECT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kCorrupt);
  EXPECT_EQ(error, "oversized payload");
}

// ---- Wire-version compatibility ---------------------------------------------

TEST(NetWireTest, V1FrameGetsTypedUnsupportedVersion) {
  // A well-formed frame in the old 24-byte-header wire version must come
  // back as kUnsupportedVersion with the peer's request id — a typed
  // refusal, not a CRC failure — and must be fully consumed so the stream
  // stays parseable.
  std::string bytes;
  EncodeFrameV1(FrameType::kRequest, 99, "old payload", &bytes);
  FrameBuffer buf;
  buf.Append(bytes.data(), bytes.size());
  Frame f;
  std::string error;
  ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kUnsupportedVersion);
  EXPECT_EQ(f.request_id, 99u);
  EXPECT_NE(error.find("version 1"), std::string::npos) << error;
  EXPECT_EQ(buf.buffered(), 0u);
  // A v2 frame following the refused v1 frame still decodes.
  std::string next = EncodedRequestFrame();
  buf.Append(next.data(), next.size());
  ASSERT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kFrame) << error;
  EXPECT_EQ(f.request_id, 42u);
}

TEST(NetWireTest, CorruptV1FrameIsCorruptNotUnsupported) {
  // The v1 path still authenticates: a bit-flipped v1 frame must be
  // rejected as corrupt, not politely refused (line noise could otherwise
  // forge a "v1 client" signal).
  std::string bytes;
  EncodeFrameV1(FrameType::kRequest, 7, "payload", &bytes);
  bytes[10] = static_cast<char>(bytes[10] ^ 0x40);  // inside request id
  FrameBuffer buf;
  buf.Append(bytes.data(), bytes.size());
  Frame f;
  std::string error;
  EXPECT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kCorrupt);
}

TEST(NetWireTest, UnknownFutureVersionIsCorrupt) {
  std::string bytes = EncodedRequestFrame();
  bytes[4] = 9;  // version byte
  FrameBuffer buf;
  buf.Append(bytes.data(), bytes.size());
  Frame f;
  std::string error;
  EXPECT_EQ(buf.Next(&f, &error), FrameBuffer::Result::kCorrupt);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(NetWireTest, GarbageIsCorruptNotCrash) {
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(24 + trial % 100, '\0');
    for (char& c : garbage) c = static_cast<char>(trial * 31 + &c - garbage.data());
    FrameBuffer buf;
    buf.Append(garbage.data(), garbage.size());
    Frame f;
    std::string error;
    const auto r = buf.Next(&f, &error);
    EXPECT_NE(r, FrameBuffer::Result::kFrame);
  }
}

/// Truncated *payloads* that pass the frame CRC cannot happen on the wire,
/// but a malformed payload inside a valid frame can (buggy client).  Every
/// prefix of every operation payload must decode as false, never crash.
TEST(NetWireTest, TruncatedOperationPayloadsRejected) {
  std::vector<Operation> ops;
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {Eq("age", Value(1))};
  sel.columns = {"emp.age"};
  ops.emplace_back(sel);
  ops.emplace_back(InsertSpec{"t", {Value(1), Value("x")}});
  UpdateSpec up;
  up.table = "t";
  up.match = Eq("id", Value(1));
  up.set_field = "v";
  up.set_value = Value(2);
  ops.emplace_back(up);
  for (const Operation& op : ops) {
    std::string payload;
    ASSERT_TRUE(EncodeOperation(op, &payload));
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Operation out;
      EXPECT_FALSE(DecodeOperation(payload.substr(0, cut), &out))
          << "prefix " << cut << " of " << payload.size() << " accepted";
    }
    // Trailing garbage is rejected too (decoders require done()).
    Operation out;
    EXPECT_FALSE(DecodeOperation(payload + "x", &out));
  }
}

TEST(NetWireTest, MalformedOpResultPayloadRejected) {
  OpResult r;
  r.columns = {"a"};
  r.rows = {{Value(1)}};
  std::string payload;
  ASSERT_TRUE(EncodeOpResult(r, &payload));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    OpResult out;
    EXPECT_FALSE(DecodeOpResult(payload.substr(0, cut), &out));
  }
  // A garbage row count cannot drive a huge allocation: the count guard
  // fails before reserve.
  std::string evil = payload;
  OpResult out;
  EXPECT_FALSE(DecodeOpResult(evil + std::string(3, '\xff'), &out));
}

}  // namespace
}  // namespace net
}  // namespace mmdb
