// End-to-end observability: a chosen trace id travels client -> wire ->
// QueryService -> flight recorder/slow-query log with its full micros
// breakdown; the admin scrape endpoints (binary frames and the HTTP shim)
// expose the mmdb_net_/mmdb_cache_/mmdb_watchdog_ series; a version-1
// client gets a typed kUnsupportedVersion reply in its own framing; the
// watchdog fires on a worker stalled behind a held relation lock and stays
// quiet on an idle server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/database.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/wire_format.h"
#include "src/server/flight_recorder.h"
#include "src/server/query_service.h"
#include "src/txn/lock_manager.h"
#include "src/util/log.h"

namespace mmdb {
namespace net {
namespace {

using std::chrono::milliseconds;

/// Server + service + database with a small emp table; watchdog timing is
/// configurable per test.
struct Harness {
  std::unique_ptr<Database> db;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  uint16_t port() const { return server->port(); }

  Harness() = default;
  Harness(Harness&&) = default;
  Harness& operator=(Harness&&) = default;
  ~Harness() {
    server.reset();  // Stop() drains before the service goes away
    service.reset();
  }
};

Harness MakeHarness(ServiceOptions sopts = {}) {
  Harness h;
  h.db = std::make_unique<Database>();
  h.db->CreateTable("emp", {{"id", Type::kInt32},
                            {"age", Type::kInt32},
                            {"name", Type::kString}});
  for (int i = 0; i < 64; ++i) {
    h.db->Insert("emp", {Value(i), Value(20 + i % 50),
                         Value("name" + std::to_string(i))});
  }
  h.service = std::make_unique<QueryService>(h.db.get(), sopts);
  h.server = std::make_unique<Server>(h.service.get(), ServerOptions{});
  EXPECT_TRUE(h.server->Start().ok());
  return h;
}

Operation PointSelect(int id) {
  SelectSpec s;
  s.table = "emp";
  s.where = {WhereClause{"id", CompareOp::kEq, Value(id)}};
  s.columns = {"emp.name"};
  return Operation(std::move(s));
}

std::string HexId(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// A raw TCP peer for the HTTP shim and mixed-version tests.
class RawPeer {
 public:
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  bool SendAll(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }
  std::string ReadToEof() {
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

class ObservabilityE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight::SetEnabledForTest(true);
    saved_threshold_ = flight::SlowThresholdMicros();
    logging::SetSinkForTest([](logging::Level, const std::string&) {});
  }
  void TearDown() override {
    flight::SetSlowThresholdMicros(saved_threshold_);
    logging::SetSinkForTest(nullptr);
  }
  uint64_t saved_threshold_ = 0;
};

TEST_F(ObservabilityE2eTest, ChosenTraceIdIsFindableWithFullBreakdown) {
  Harness h = MakeHarness();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.port()).ok());

  constexpr uint64_t kTrace = 0x0E2E'0000'0000'1234ULL;
  Response r = client.Call(PointSelect(7), kTrace);
  ASSERT_TRUE(r.ok());
  // The response frame echoes the chosen id...
  EXPECT_EQ(r.trace_id, kTrace);
  // ...and carries the server-side micros breakdown + cache outcome.
  EXPECT_EQ(r.result.cache_outcome, CacheOutcome::kMiss);

  // The flight recorder holds the same request, keyed by the same id.
  flight::Record rec;
  ASSERT_TRUE(flight::FindByTraceId(kTrace, &rec));
  EXPECT_EQ(rec.kind, static_cast<uint8_t>(OpKind::kSelect));
  EXPECT_EQ(rec.admission, static_cast<uint8_t>(flight::Admission::kAdmitted));
  EXPECT_EQ(rec.cache, static_cast<uint8_t>(CacheOutcome::kMiss));
  EXPECT_EQ(rec.rows, 1u);
  EXPECT_NE(rec.fingerprint, 0u);
  EXPECT_GE(rec.total_us, rec.exec_us);
  EXPECT_EQ(rec.queue_us, r.result.queue_us);
  EXPECT_EQ(rec.exec_us, r.result.exec_us);

  // A repeat of the same statement shape is served by the reuse cache and
  // is recorded as such, under its own trace id.
  constexpr uint64_t kTrace2 = kTrace + 1;
  Response r2 = client.Call(PointSelect(7), kTrace2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.result.cache_outcome, CacheOutcome::kHit);
  flight::Record rec2;
  ASSERT_TRUE(flight::FindByTraceId(kTrace2, &rec2));
  EXPECT_EQ(rec2.cache, static_cast<uint8_t>(CacheOutcome::kHit));
  EXPECT_EQ(rec2.fingerprint, rec.fingerprint);  // same statement shape
}

TEST_F(ObservabilityE2eTest, AutoTraceIdsAreGeneratedAndDistinct) {
  Harness h = MakeHarness();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.port()).ok());
  Response a = client.Call(PointSelect(1));
  Response b = client.Call(PointSelect(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(b.trace_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
}

TEST_F(ObservabilityE2eTest, SlowQueryLandsInSlowLogWithBreakdown) {
  flight::ClearSlowLogForTest();
  flight::SetSlowThresholdMicros(0);  // everything is slow
  Harness h = MakeHarness();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.port()).ok());
  constexpr uint64_t kTrace = 0x0E2E'0000'5104'0001ULL;
  ASSERT_TRUE(client.Call(PointSelect(3), kTrace).ok());

  const std::string text = flight::SlowLogText();
  const size_t at = text.find(HexId(kTrace));
  ASSERT_NE(at, std::string::npos) << text;
  const std::string line = text.substr(at, text.find('\n', at) - at);
  EXPECT_NE(line.find("queue_us="), std::string::npos) << line;
  EXPECT_NE(line.find("exec_us="), std::string::npos) << line;
  EXPECT_NE(line.find("cache="), std::string::npos) << line;
}

TEST_F(ObservabilityE2eTest, AdminFramesServeAllFourEndpoints) {
  Harness h = MakeHarness();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.port()).ok());
  ASSERT_TRUE(client.Call(PointSelect(5)).ok());  // populate some series

  std::string metrics;
  ASSERT_TRUE(client.Admin(AdminKind::kMetrics, &metrics).ok());
  EXPECT_NE(metrics.find("mmdb_net_frames_in_total"), std::string::npos);
  EXPECT_NE(metrics.find("mmdb_cache_"), std::string::npos);
  EXPECT_NE(metrics.find("mmdb_watchdog_checks_total"), std::string::npos);

  std::string status;
  ASSERT_TRUE(client.Admin(AdminKind::kStatus, &status).ok());
  EXPECT_NE(status.find("workers:"), std::string::npos);
  EXPECT_NE(status.find("queue_depth:"), std::string::npos);
  EXPECT_NE(status.find("net_connections:"), std::string::npos);

  std::string slowlog;
  ASSERT_TRUE(client.Admin(AdminKind::kSlowLog, &slowlog).ok());
  EXPECT_NE(slowlog.find("slow-query log:"), std::string::npos);

  std::string fl;
  ASSERT_TRUE(client.Admin(AdminKind::kFlight, &fl).ok());
  EXPECT_NE(fl.find("flight recorder:"), std::string::npos);
}

TEST_F(ObservabilityE2eTest, HttpShimServesMetricsForCurl) {
  Harness h = MakeHarness();
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  ASSERT_TRUE(p.SendAll("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string reply = p.ReadToEof();
  EXPECT_EQ(reply.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(reply.find("mmdb_net_frames_in_total"), std::string::npos);
  EXPECT_NE(reply.find("mmdb_watchdog_"), std::string::npos);
}

TEST_F(ObservabilityE2eTest, HttpShimUnknownPathIs404) {
  Harness h = MakeHarness();
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));
  ASSERT_TRUE(p.SendAll("GET /wrong HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string reply = p.ReadToEof();
  EXPECT_EQ(reply.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << reply;
}

TEST_F(ObservabilityE2eTest, V1ClientGetsTypedErrorInV1Framing) {
  Harness h = MakeHarness();
  RawPeer p;
  ASSERT_TRUE(p.Connect(h.port()));

  std::string payload, frame;
  ASSERT_TRUE(EncodeOperation(PointSelect(1), &payload));
  EncodeFrameV1(FrameType::kRequest, /*request_id=*/55, payload, &frame);
  ASSERT_TRUE(p.SendAll(frame));

  // The reply must be parseable by a *v1* decoder: 24-byte header with
  // payload_len at offset 16, carrying kError/kUnsupportedVersion
  // addressed to request 55.  The server closes afterwards.
  const std::string reply = p.ReadToEof();
  ASSERT_GE(reply.size(), kHeaderSizeV1);
  EXPECT_EQ(std::memcmp(reply.data(), "MMDB", 4), 0);
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), kWireVersion1);
  EXPECT_EQ(static_cast<FrameType>(reply[5]), FrameType::kError);
  uint64_t request_id = 0;
  std::memcpy(&request_id, reply.data() + 8, sizeof(request_id));
  EXPECT_EQ(request_id, 55u);
  uint32_t len = 0;
  std::memcpy(&len, reply.data() + 16, sizeof(len));
  ASSERT_EQ(reply.size(), kHeaderSizeV1 + len);

  WireErrorCode code;
  std::string message;
  ASSERT_TRUE(DecodeError(
      std::string_view(reply.data() + kHeaderSizeV1, len), &code, &message));
  EXPECT_EQ(code, WireErrorCode::kUnsupportedVersion);
  EXPECT_NE(message.find("version"), std::string::npos);
}

TEST_F(ObservabilityE2eTest, WatchdogQuietOnIdleServer) {
  ServiceOptions sopts;
  sopts.watchdog_interval = milliseconds(5);
  sopts.watchdog_deadline = milliseconds(25);
  Harness h = MakeHarness(sopts);
  // Several deadlines of pure idleness (plus a connected-but-quiet
  // client): no alerts.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.port()).ok());
  std::this_thread::sleep_for(milliseconds(100));
  ASSERT_NE(h.service->watchdog(), nullptr);
  EXPECT_EQ(h.service->watchdog()->alerts(), 0u);
  EXPECT_EQ(h.service->watchdog()->stalled_workers(), 0u);
  EXPECT_EQ(h.service->watchdog()->wedged_loops(), 0u);
}

TEST_F(ObservabilityE2eTest, WatchdogFiresOnWorkerStalledBehindHeldLock) {
  ServiceOptions sopts;
  sopts.workers = 2;
  sopts.watchdog_interval = milliseconds(5);
  sopts.watchdog_deadline = milliseconds(50);
  Harness h = MakeHarness(sopts);

  // An outside "transaction" grabs every partition of emp exclusively (and
  // the relation-growth sentinel), so the submitted update's worker parks
  // in the lock manager far past the watchdog deadline.
  constexpr uint64_t kHolder = 0x0E2E'70CC'0000'0001ULL;
  LockManager& lm = h.db->lock_manager();
  const size_t parts = h.db->GetTable("emp")->partitions().size();
  for (uint32_t pid = 0; pid < parts; ++pid) {
    ASSERT_TRUE(lm.Acquire(kHolder, LockId{"emp", pid}, LockMode::kExclusive));
  }
  ASSERT_TRUE(lm.Acquire(kHolder, LockId{"emp", LockId::kRelationLock},
                         LockMode::kExclusive));

  UpdateSpec up;
  up.table = "emp";
  up.match = WhereClause{"id", CompareOp::kEq, Value(1)};
  up.set_field = "age";
  up.set_value = Value(99);

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Session* session = h.service->OpenSession();
  ASSERT_TRUE(h.service
                  ->Submit(session, Operation(std::move(up)),
                           [&](const OpResult&) {
                             std::lock_guard<std::mutex> lock(mu);
                             done = true;
                             cv.notify_all();
                           })
                  .ok());

  // The worker is now wedged behind the held locks: the watchdog must
  // notice within a few deadlines.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (h.service->watchdog()->alerts() == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_GE(h.service->watchdog()->alerts(), 1u);
  EXPECT_GE(h.service->watchdog()->stalled_workers(), 1u);

  // Release and let the retried update finish so teardown is clean.
  lm.ReleaseAll(kHolder);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; });
    EXPECT_TRUE(done);
  }
  h.service->CloseSession(session);
}

}  // namespace
}  // namespace net
}  // namespace mmdb
