// Cursor and range-scan behavior shared by the four order-preserving
// structures (array, AVL Tree, B Tree, T Tree).

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mmdb {
namespace {

struct Param {
  IndexKind kind;
  int node_size;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = IndexKindName(info.param.kind);
  for (char& c : name) {
    if (c == ' ') c = '_';
    if (c == '+') c = 'p';  // gtest param names must be alphanumeric/_
  }
  return name + "_n" + std::to_string(info.param.node_size);
}

class OrderedIndexTest : public ::testing::TestWithParam<Param> {
 protected:
  void Build(const std::vector<int32_t>& keys) {
    rel_ = testutil::IntRelation("r", keys);
    IndexConfig config;
    config.node_size = GetParam().node_size;
    config.expected = keys.size();
    auto ops = std::make_shared<FieldKeyOps>(&rel_->schema(), 0);
    auto index = CreateIndex(GetParam().kind, std::move(ops), config);
    rel_->ForEachTuple([&](TupleRef t) { index->Insert(t); });
    index_.reset(static_cast<OrderedIndex*>(index.release()));
  }

  int32_t KeyAt(const OrderedIndex::Cursor& c) const {
    return testutil::KeyOf(c.Get(), *rel_);
  }

  std::unique_ptr<Relation> rel_;
  std::unique_ptr<OrderedIndex> index_;
};

TEST_P(OrderedIndexTest, ForwardScanIsSorted) {
  Build(testutil::ShuffledKeys(400));
  int32_t expected = 0;
  for (auto c = index_->First(); c->Valid(); c->Next()) {
    EXPECT_EQ(KeyAt(*c), expected++);
  }
  EXPECT_EQ(expected, 400);
}

TEST_P(OrderedIndexTest, BackwardScanIsReverseSorted) {
  Build(testutil::ShuffledKeys(400));
  int32_t expected = 399;
  for (auto c = index_->Last(); c->Valid(); c->Prev()) {
    EXPECT_EQ(KeyAt(*c), expected--);
  }
  EXPECT_EQ(expected, -1);
}

TEST_P(OrderedIndexTest, BidirectionalWalk) {
  Build({10, 20, 30, 40, 50});
  auto c = index_->First();
  c->Next();
  c->Next();
  EXPECT_EQ(KeyAt(*c), 30);
  c->Prev();
  EXPECT_EQ(KeyAt(*c), 20);
  c->Next();
  c->Next();
  c->Next();
  EXPECT_EQ(KeyAt(*c), 50);
  c->Next();
  EXPECT_FALSE(c->Valid());
}

TEST_P(OrderedIndexTest, SeekIsLowerBound) {
  Build({10, 20, 20, 20, 30, 40});
  EXPECT_EQ(KeyAt(*index_->Seek(Value(20))), 20);
  EXPECT_EQ(KeyAt(*index_->Seek(Value(15))), 20);
  EXPECT_EQ(KeyAt(*index_->Seek(Value(5))), 10);
  EXPECT_EQ(KeyAt(*index_->Seek(Value(31))), 40);
  EXPECT_FALSE(index_->Seek(Value(41))->Valid());
}

TEST_P(OrderedIndexTest, SeekFindsFirstDuplicate) {
  // All 20s must be reachable by scanning forward from Seek(20).
  Build({10, 20, 20, 20, 30});
  int count = 0;
  for (auto c = index_->Seek(Value(20)); c->Valid() && KeyAt(*c) == 20;
       c->Next()) {
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST_P(OrderedIndexTest, CloneIsIndependent) {
  Build({1, 2, 3});
  auto a = index_->First();
  auto b = a->Clone();
  a->Next();
  EXPECT_EQ(KeyAt(*a), 2);
  EXPECT_EQ(KeyAt(*b), 1);  // clone unaffected
}

TEST_P(OrderedIndexTest, EmptyIndexCursors) {
  Build({});
  EXPECT_FALSE(index_->First()->Valid());
  EXPECT_FALSE(index_->Last()->Valid());
  EXPECT_FALSE(index_->Seek(Value(1))->Valid());
}

TEST_P(OrderedIndexTest, ScanRangeInclusiveExclusive) {
  Build({10, 20, 30, 40, 50});
  auto collect = [&](Bound lo, Bound hi) {
    std::vector<int32_t> out;
    index_->ScanRange(lo, hi, [&](TupleRef t) {
      out.push_back(testutil::KeyOf(t, *rel_));
      return true;
    });
    return out;
  };
  Value v20(20), v40(40);
  EXPECT_EQ(collect({&v20, true}, {&v40, true}),
            (std::vector<int32_t>{20, 30, 40}));
  EXPECT_EQ(collect({&v20, false}, {&v40, false}),
            (std::vector<int32_t>{30}));
  EXPECT_EQ(collect({nullptr, true}, {&v20, true}),
            (std::vector<int32_t>{10, 20}));
  EXPECT_EQ(collect({&v40, true}, {nullptr, true}),
            (std::vector<int32_t>{40, 50}));
  EXPECT_EQ(collect({nullptr, true}, {nullptr, true}).size(), 5u);
}

TEST_P(OrderedIndexTest, ScanRangeWithDuplicateBounds) {
  Build({10, 20, 20, 20, 30});
  Value v20(20);
  std::vector<int32_t> out;
  index_->ScanRange({&v20, false}, {nullptr, true}, [&](TupleRef t) {
    out.push_back(testutil::KeyOf(t, *rel_));
    return true;
  });
  // Exclusive lower bound skips every duplicate of 20.
  EXPECT_EQ(out, (std::vector<int32_t>{30}));
}

TEST_P(OrderedIndexTest, ScanEarlyTermination) {
  Build(testutil::ShuffledKeys(100));
  int seen = 0;
  index_->ScanAll([&](TupleRef) { return ++seen < 10; });
  EXPECT_EQ(seen, 10);
}

TEST_P(OrderedIndexTest, DuplicatesAreContiguousInScan) {
  std::vector<int32_t> keys;
  for (int32_t k = 0; k < 30; ++k) {
    for (int c = 0; c < 4; ++c) keys.push_back(k);
  }
  Rng rng(3);
  rng.Shuffle(&keys);
  Build(keys);
  // In-order scan must produce each key as one contiguous run.
  std::vector<int32_t> seen;
  index_->ScanAll([&](TupleRef t) {
    seen.push_back(testutil::KeyOf(t, *rel_));
    return true;
  });
  ASSERT_EQ(seen.size(), 120u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LE(seen[i - 1], seen[i]);
}

INSTANTIATE_TEST_SUITE_P(
    OrderedStructures, OrderedIndexTest,
    ::testing::Values(Param{IndexKind::kArray, 2},
                      Param{IndexKind::kAvlTree, 2},
                      Param{IndexKind::kBTree, 2},
                      Param{IndexKind::kBTree, 10},
                      Param{IndexKind::kBPlusTree, 2},
                      Param{IndexKind::kBPlusTree, 10},
                      Param{IndexKind::kTTree, 2},
                      Param{IndexKind::kTTree, 10},
                      Param{IndexKind::kTTree, 50}),
    ParamName);

}  // namespace
}  // namespace mmdb
