// Partition-contention stress (run under ThreadSanitizer in CI): writers
// hammer *different* partitions of one relation — where the partition-local
// index protocol promises no relation-wide X lock — while range scans and
// appending inserts run concurrently.  Verifies exactness of the disjoint
// increments, relation/index consistency, and that the disjoint writers
// never needed the structure lock exclusive.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/server/query_service.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace {

using namespace std::chrono_literals;

WhereClause Eq(std::string field, Value v) {
  return WhereClause{std::move(field), CompareOp::kEq, std::move(v)};
}

// Pulls `name value` exposition lines into a value keyed by full series
// name; returns 0 for absent series.
long long SeriesValue(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(series + " ", 0) == 0) {
      return std::stoll(line.substr(series.size() + 1));
    }
  }
  return 0;
}

// A relation spread over several partitions, each updater thread owning one
// partition's id range outright.
constexpr int kPartitions = 4;
constexpr int kRowsPerPartition = 64;  // == slot_capacity: exactly one each
constexpr int kRows = kPartitions * kRowsPerPartition;

std::unique_ptr<Database> MakeGridDb() {
  auto db = std::make_unique<Database>();
  Relation::Options options;
  options.partition.slot_capacity = kRowsPerPartition;
  db->CreateTable("grid",
                  {{"id", Type::kInt32}, {"value", Type::kInt64}}, options);
  for (int i = 0; i < kRows; ++i) {
    db->Insert("grid", {Value(i), Value(int64_t{0})});
  }
  return db;
}

TEST(PartitionStressTest, DisjointPartitionWritersWithConcurrentRangeScans) {
  auto db = MakeGridDb();
  ASSERT_EQ(db->GetTable("grid")->partitions().size(),
            static_cast<size_t>(kPartitions));

  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_depth = 1024;
  opts.lock_timeout = 2000ms;
  opts.max_attempts = 64;
  QueryService service(db.get(), opts);

  constexpr int kIncrementsPerWriter = 150;
  constexpr int kScansPerReader = 60;
  std::atomic<int> failures{0};
  std::atomic<int> scan_errors{0};

  // One writer per partition: increments only ids in [p*64, (p+1)*64).
  auto writer = [&](int p) {
    Session* s = service.OpenSession();
    for (int i = 0; i < kIncrementsPerWriter; ++i) {
      IncrementSpec inc;
      inc.table = "grid";
      inc.match = Eq("id", Value(p * kRowsPerPartition +
                                 (i * 13) % kRowsPerPartition));
      inc.field = "value";
      inc.delta = 1;
      OpResult r = s->Increment(inc);
      if (!r.ok() || r.rows_affected != 1) ++failures;
    }
  };

  // Range scans sweep across every partition while the writers run.
  auto scanner = [&](int salt) {
    Session* s = service.OpenSession();
    for (int i = 0; i < kScansPerReader; ++i) {
      const int lo = ((i + salt) * 37) % (kRows - 40);
      SelectSpec sel;
      sel.table = "grid";
      sel.where = {WhereClause{"id", CompareOp::kGe, Value(lo)},
                   WhereClause{"id", CompareOp::kLt, Value(lo + 40)}};
      OpResult r = s->Select(sel);
      if (!r.ok()) ++failures;
      if (r.ok() && r.rows.size() < 40u) ++scan_errors;  // pre-seeded rows
    }
  };

  // Appending inserts exercise the reservation path (and occasionally the
  // new-partition escalation) concurrently with the partition writers.
  auto inserter = [&] {
    Session* s = service.OpenSession();
    for (int i = 0; i < kRowsPerPartition + 20; ++i) {
      OpResult r = s->Insert(
          InsertSpec{"grid", {Value(kRows + i), Value(int64_t{0})}});
      if (!r.ok()) ++failures;
    }
  };

  std::vector<std::thread> clients;
  for (int p = 0; p < kPartitions; ++p) clients.emplace_back(writer, p);
  clients.emplace_back(scanner, 0);
  clients.emplace_back(scanner, 11);
  clients.emplace_back(inserter);
  for (auto& t : clients) t.join();

  const std::string metrics = service.MetricsText();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(scan_errors.load(), 0);

  // Disjoint increments are exact: each owned id received exactly the
  // increments its writer issued.
  Relation* rel = db->GetTable("grid");
  std::vector<int64_t> per_id(kRows, -1);
  rel->ForEachTuple([&](TupleRef t) {
    const int32_t id = tuple::GetValue(t, rel->schema(), 0).AsInt32();
    if (id < kRows) per_id[id] = tuple::GetValue(t, rel->schema(), 1).AsInt64();
  });
  for (int id = 0; id < kRows; ++id) {
    int expected = 0;
    for (int i = 0; i < kIncrementsPerWriter; ++i) {
      if ((i * 13) % kRowsPerPartition == id % kRowsPerPartition) ++expected;
    }
    EXPECT_EQ(per_id[id], expected) << "id " << id;
  }

  // Consistency: scan count matches cardinality; every row reachable
  // through the (partition-local) primary index.
  size_t scanned = 0;
  rel->ForEachTuple([&](TupleRef) { ++scanned; });
  EXPECT_EQ(scanned, rel->cardinality());
  EXPECT_EQ(scanned, static_cast<size_t>(kRows + kRowsPerPartition + 20));
  for (int id = 0; id < kRows; id += 17) {
    QueryResult qr =
        db->Query("grid").Where("id", CompareOp::kEq, Value(id)).Run();
    EXPECT_EQ(qr.rows.size(), 1u) << "id " << id;
  }

  // No deadlock victims were made, and the disjoint-partition writers
  // never requested the structure lock exclusive; the histogram counts
  // every Acquire call, so the exclusive/structure series only moves when
  // an insert overflows into a brand-new partition (the inserter's tail).
  EXPECT_EQ(SeriesValue(metrics, "mmdb_lock_timeouts_total"), 0);
  EXPECT_GT(SeriesValue(metrics,
                        "mmdb_lock_wait_micros_count{mode=\"exclusive\","
                        "scope=\"partition\"}"),
            0);
}

// The acceptance check in its purest form: two single-partition updates on
// distinct partitions proceed concurrently with zero structure-X requests.
TEST(PartitionStressTest, DisjointUpdatesNeverTakeTheStructureLockExclusive) {
  auto db = MakeGridDb();
  ServiceOptions opts;
  opts.workers = 2;
  opts.lock_timeout = 2000ms;
  opts.max_attempts = 64;
  QueryService service(db.get(), opts);
  // The load's auto-commit inserts escalate to structure X whenever a new
  // partition must be created, so measure the writers as a delta from here.
  const std::string before = service.MetricsText();
  const long long structure_x_before = SeriesValue(
      before,
      "mmdb_lock_wait_micros_count{mode=\"exclusive\",scope=\"structure\"}");

  std::atomic<int> failures{0};
  auto writer = [&](int p) {
    Session* s = service.OpenSession();
    for (int i = 0; i < 200; ++i) {
      UpdateSpec up;
      up.table = "grid";
      up.match = Eq("id", Value(p * kRowsPerPartition + i % kRowsPerPartition));
      up.set_field = "value";
      up.set_value = Value(int64_t{i});
      OpResult r = s->Update(up);
      if (!r.ok() || r.rows_affected != 1) ++failures;
    }
  };
  std::thread a(writer, 0), b(writer, 2);
  a.join();
  b.join();

  const std::string metrics = service.MetricsText();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(SeriesValue(metrics,
                        "mmdb_lock_wait_micros_count{mode=\"exclusive\","
                        "scope=\"structure\"}"),
            structure_x_before);
  EXPECT_GT(SeriesValue(metrics,
                        "mmdb_lock_wait_micros_count{mode=\"exclusive\","
                        "scope=\"partition\"}"),
            0);
  EXPECT_EQ(SeriesValue(metrics, "mmdb_lock_timeouts_total"), 0);
}

}  // namespace
}  // namespace mmdb
