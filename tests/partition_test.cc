#include <gtest/gtest.h>

#include "src/storage/partition.h"
#include "src/storage/tuple.h"

namespace mmdb {
namespace {

Schema TwoIntSchema() {
  return Schema({{"k", Type::kInt32}, {"v", Type::kInt32}});
}

TEST(PartitionTest, InsertAssignsStableAddresses) {
  Schema s = TwoIntSchema();
  Partition p(0, &s, {});
  TupleRef a = p.Insert({Value(1), Value(10)});
  TupleRef b = p.Insert({Value(2), Value(20)});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(p.live_count(), 2u);
  EXPECT_EQ(tuple::GetInt32(a, 0), 1);
  EXPECT_EQ(tuple::GetInt32(b, 0), 2);
}

TEST(PartitionTest, SlotCapacityEnforced) {
  Schema s = TwoIntSchema();
  Partition::Options opt;
  opt.slot_capacity = 4;
  Partition p(0, &s, opt);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(p.Insert({Value(i), Value(i)}), nullptr);
  }
  EXPECT_EQ(p.Insert({Value(9), Value(9)}), nullptr);
  EXPECT_FALSE(p.HasRoomFor({Value(9), Value(9)}));
}

TEST(PartitionTest, EraseFreesSlotForReuse) {
  Schema s = TwoIntSchema();
  Partition::Options opt;
  opt.slot_capacity = 2;
  Partition p(0, &s, opt);
  TupleRef a = p.Insert({Value(1), Value(1)});
  p.Insert({Value(2), Value(2)});
  EXPECT_TRUE(p.Erase(a));
  EXPECT_EQ(p.live_count(), 1u);
  TupleRef c = p.Insert({Value(3), Value(3)});
  EXPECT_EQ(c, a);  // slot reused
}

TEST(PartitionTest, EraseRejectsForeignAndDeadPointers) {
  Schema s = TwoIntSchema();
  Partition p(0, &s, {});
  Partition q(1, &s, {});
  TupleRef a = p.Insert({Value(1), Value(1)});
  EXPECT_FALSE(q.Erase(a));
  EXPECT_TRUE(p.Erase(a));
  EXPECT_FALSE(p.Erase(a));  // already dead
}

TEST(PartitionTest, SlotOfRefOfRoundTrip) {
  Schema s = TwoIntSchema();
  Partition p(3, &s, {});
  TupleRef a = p.Insert({Value(1), Value(1)});
  TupleRef b = p.Insert({Value(2), Value(2)});
  EXPECT_EQ(p.RefOf(p.SlotOf(a)), a);
  EXPECT_EQ(p.RefOf(p.SlotOf(b)), b);
  EXPECT_TRUE(p.Contains(a));
  EXPECT_FALSE(p.Contains(a + 1));  // unaligned interior pointer
}

TEST(PartitionTest, StringHeapAllocation) {
  Schema s({{"name", Type::kString}, {"id", Type::kInt32}});
  Partition p(0, &s, {});
  TupleRef t = p.Insert({Value("alice"), Value(7)});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(tuple::GetString(t, s.offset(0)), "alice");
  EXPECT_GT(p.heap_used(), 0u);
}

TEST(PartitionTest, HeapExhaustionRejectsInsert) {
  Schema s({{"name", Type::kString}});
  Partition::Options opt;
  opt.heap_bytes = 64;
  Partition p(0, &s, opt);
  std::string big(100, 'x');
  EXPECT_FALSE(p.HasRoomFor({Value(big)}));
  EXPECT_EQ(p.Insert({Value(big)}), nullptr);
  // A small string still fits.
  EXPECT_NE(p.Insert({Value("ok")}), nullptr);
}

TEST(PartitionTest, UpdateFieldInPlace) {
  Schema s = TwoIntSchema();
  Partition p(0, &s, {});
  TupleRef t = p.Insert({Value(1), Value(2)});
  EXPECT_TRUE(p.UpdateField(t, 1, Value(99)));
  EXPECT_EQ(tuple::GetInt32(t, s.offset(1)), 99);
}

TEST(PartitionTest, UpdateStringFailsWhenHeapFull) {
  Schema s({{"name", Type::kString}});
  Partition::Options opt;
  opt.heap_bytes = 32;
  Partition p(0, &s, opt);
  TupleRef t = p.Insert({Value("1234567890")});
  ASSERT_NE(t, nullptr);
  // Growing beyond the remaining heap fails (caller then relocates).
  EXPECT_FALSE(p.UpdateField(t, 0, Value(std::string(64, 'y'))));
}

TEST(PartitionTest, ForwardingAddressLifecycle) {
  Schema s = TwoIntSchema();
  Partition p(0, &s, {});
  Partition q(1, &s, {});
  TupleRef old_ref = p.Insert({Value(1), Value(1)});
  TupleRef new_ref = q.Insert({Value(1), Value(1)});
  p.SetForward(old_ref, new_ref);
  EXPECT_EQ(p.GetForward(old_ref), new_ref);
  EXPECT_EQ(p.live_count(), 0u);
  EXPECT_EQ(p.slot_state(p.SlotOf(old_ref)), Partition::SlotState::kForward);
  // Live tuples are not forwarded.
  EXPECT_EQ(q.GetForward(new_ref), nullptr);
}

TEST(PartitionTest, ForEachLiveVisitsOnlyLive) {
  Schema s = TwoIntSchema();
  Partition p(0, &s, {});
  TupleRef a = p.Insert({Value(1), Value(1)});
  p.Insert({Value(2), Value(2)});
  p.Erase(a);
  int count = 0;
  p.ForEachLive([&](TupleRef t) {
    EXPECT_EQ(tuple::GetInt32(t, 0), 2);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(PartitionTest, InsertIntoSlotExactPlacement) {
  Schema s = TwoIntSchema();
  Partition p(0, &s, {});
  TupleRef t = p.InsertIntoSlot(5, {Value(9), Value(9)});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(p.SlotOf(t), 5u);
  // Occupied slot rejected.
  EXPECT_EQ(p.InsertIntoSlot(5, {Value(1), Value(1)}), nullptr);
  // Skipped slots 0..4 are still usable by regular inserts.
  for (int i = 0; i < 5; ++i) {
    TupleRef u = p.Insert({Value(i), Value(i)});
    ASSERT_NE(u, nullptr);
    EXPECT_LT(p.SlotOf(u), 5u);
  }
}

TEST(PartitionTest, InsertIntoSlotOutOfRange) {
  Schema s = TwoIntSchema();
  Partition::Options opt;
  opt.slot_capacity = 8;
  Partition p(0, &s, opt);
  EXPECT_EQ(p.InsertIntoSlot(8, {Value(1), Value(1)}), nullptr);
}

}  // namespace
}  // namespace mmdb
