// Partition-local index composites: one shard per partition, mutations
// route to the owning partition's shard, reads and ordered scans behave
// exactly like a single relation-wide index of the shard kind.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/index/partitioned_index.h"
#include "src/storage/relation.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

// A relation whose partitions hold only a handful of tuples, so modest row
// counts spread across several partitions.
std::unique_ptr<Relation> SmallPartitionRelation(uint32_t slot_capacity = 8) {
  Relation::Options options;
  options.partition.slot_capacity = slot_capacity;
  return std::make_unique<Relation>(
      "p", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}),
      options);
}

TupleIndex* AttachOrderedFacade(Relation* rel,
                                IndexKind kind = IndexKind::kTTree) {
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  auto index = std::make_unique<PartitionedOrderedIndex>(
      rel, kind, std::move(ops), IndexConfig{});
  index->set_name("p.key.facade");
  index->set_key_fields({0});
  return rel->AttachIndex(std::move(index));
}

TEST(PartitionedIndexTest, MergedScanIsGloballyOrdered) {
  auto rel = SmallPartitionRelation();
  const auto keys = testutil::ShuffledKeys(100);
  for (int32_t k : keys) rel->Insert({Value(k), Value(k)});
  ASSERT_GE(rel->partitions().size(), 2u) << "need a multi-partition relation";

  auto* facade =
      static_cast<PartitionedOrderedIndex*>(AttachOrderedFacade(rel.get()));
  EXPECT_TRUE(facade->partition_local());
  EXPECT_EQ(facade->kind(), IndexKind::kTTree);
  EXPECT_EQ(facade->size(), 100u);

  // The bulk attach routed every tuple into its partition's shard.
  size_t shard_total = 0, populated = 0;
  for (const auto& shard : facade->shards()) {
    if (shard == nullptr) continue;
    shard_total += shard->size();
    populated += shard->size() > 0 ? 1 : 0;
  }
  EXPECT_EQ(shard_total, 100u);
  EXPECT_GE(populated, 2u);

  // The merged scan is indistinguishable from one relation-wide index.
  std::vector<int32_t> expected(100);
  for (int32_t i = 0; i < 100; ++i) expected[i] = i;
  EXPECT_EQ(testutil::CollectKeys(*facade, *rel), expected);
}

TEST(PartitionedIndexTest, ScanRangeCrossesPartitionBoundaries) {
  auto rel = SmallPartitionRelation();
  for (int32_t k : testutil::ShuffledKeys(60)) rel->Insert({Value(k), Value(k)});
  auto* facade =
      static_cast<OrderedIndex*>(AttachOrderedFacade(rel.get()));

  const Value lo(10), hi(40);
  std::vector<int32_t> got;
  facade->ScanRange({&lo, /*inclusive=*/true}, {&hi, /*inclusive=*/false},
                    [&](TupleRef t) {
                      got.push_back(testutil::KeyOf(t, *rel));
                      return true;
                    });
  std::vector<int32_t> expected;
  for (int32_t k = 10; k < 40; ++k) expected.push_back(k);
  EXPECT_EQ(got, expected);
}

TEST(PartitionedIndexTest, FindAllCollectsDuplicatesFromEveryShard) {
  auto rel = SmallPartitionRelation(/*slot_capacity=*/4);
  // Key 7 lands in several partitions among filler rows.
  for (int32_t i = 0; i < 24; ++i) {
    rel->Insert({Value(i % 3 == 0 ? 7 : 100 + i), Value(i)});
  }
  auto* facade = AttachOrderedFacade(rel.get());

  ASSERT_NE(facade->Find(Value(7)), nullptr);
  EXPECT_EQ(testutil::KeyOf(facade->Find(Value(7)), *rel), 7);
  std::vector<TupleRef> hits;
  facade->FindAll(Value(7), &hits);
  EXPECT_EQ(hits.size(), 8u);
  EXPECT_EQ(facade->Find(Value(9999)), nullptr);
}

TEST(PartitionedIndexTest, CursorWalksForwardAndBackwardAcrossShards) {
  auto rel = SmallPartitionRelation();
  for (int32_t k : testutil::ShuffledKeys(50)) rel->Insert({Value(k), Value(k)});
  auto* facade =
      static_cast<OrderedIndex*>(AttachOrderedFacade(rel.get()));

  // Forward from First.
  std::vector<int32_t> forward;
  for (auto c = facade->First(); c->Valid(); c->Next()) {
    forward.push_back(testutil::KeyOf(c->Get(), *rel));
  }
  ASSERT_EQ(forward.size(), 50u);
  EXPECT_TRUE(std::is_sorted(forward.begin(), forward.end()));

  // Backward from Last mirrors it exactly.
  std::vector<int32_t> backward;
  for (auto c = facade->Last(); c->Valid(); c->Prev()) {
    backward.push_back(testutil::KeyOf(c->Get(), *rel));
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(backward, forward);

  // Seek lands on the lower bound and can step both ways over shard
  // boundaries.
  auto c = facade->Seek(Value(25));
  ASSERT_TRUE(c->Valid());
  EXPECT_EQ(testutil::KeyOf(c->Get(), *rel), 25);
  c->Prev();
  ASSERT_TRUE(c->Valid());
  EXPECT_EQ(testutil::KeyOf(c->Get(), *rel), 24);
  c->Next();
  c->Next();
  EXPECT_EQ(testutil::KeyOf(c->Get(), *rel), 26);
}

TEST(PartitionedIndexTest, EraseRoutesToTheOwningShard) {
  auto rel = SmallPartitionRelation();
  for (int32_t k : testutil::ShuffledKeys(40)) rel->Insert({Value(k), Value(k)});
  auto* facade = AttachOrderedFacade(rel.get());

  TupleRef victim = facade->Find(Value(17));
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(rel->Delete(victim).ok());
  EXPECT_EQ(facade->size(), 39u);
  EXPECT_EQ(facade->Find(Value(17)), nullptr);

  std::vector<int32_t> expected;
  for (int32_t i = 0; i < 40; ++i) {
    if (i != 17) expected.push_back(i);
  }
  EXPECT_EQ(testutil::CollectKeys(*facade, *rel), expected);
}

TEST(PartitionedIndexTest, NewPartitionsGrowNewShards) {
  auto rel = SmallPartitionRelation(/*slot_capacity=*/4);
  rel->Insert({Value(0), Value(0)});
  auto* facade =
      static_cast<PartitionedOrderedIndex*>(AttachOrderedFacade(rel.get()));
  const size_t shards_before = facade->shards().size();

  // Overflow the existing partition(s); Relation::AddPartition must notify
  // the facade so routing keeps working for the new partition's tuples.
  for (int32_t k = 1; k < 20; ++k) {
    ASSERT_NE(rel->Insert({Value(k), Value(k)}), nullptr);
  }
  EXPECT_GT(facade->shards().size(), shards_before);
  EXPECT_EQ(facade->size(), 20u);
  std::vector<int32_t> expected(20);
  for (int32_t i = 0; i < 20; ++i) expected[i] = i;
  EXPECT_EQ(testutil::CollectKeys(*facade, *rel), expected);
}

TEST(PartitionedIndexTest, HashFacadeProbesScansAndAggregatesStats) {
  auto rel = SmallPartitionRelation();
  for (int32_t k : testutil::ShuffledKeys(64)) rel->Insert({Value(k), Value(k)});

  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  auto index = std::make_unique<PartitionedHashIndex>(
      rel.get(), IndexKind::kChainedBucketHash, std::move(ops), IndexConfig{});
  index->set_name("p.key.hash_facade");
  index->set_key_fields({0});
  auto* facade =
      static_cast<PartitionedHashIndex*>(rel->AttachIndex(std::move(index)));

  EXPECT_TRUE(facade->partition_local());
  EXPECT_EQ(facade->kind(), IndexKind::kChainedBucketHash);
  EXPECT_EQ(facade->size(), 64u);
  ASSERT_NE(facade->Find(Value(33)), nullptr);
  EXPECT_EQ(testutil::KeyOf(facade->Find(Value(33)), *rel), 33);
  EXPECT_EQ(facade->Find(Value(1000)), nullptr);

  // Unordered scan touches every element exactly once.
  std::set<int32_t> seen;
  facade->ScanAll([&](TupleRef t) {
    seen.insert(testutil::KeyOf(t, *rel));
    return true;
  });
  EXPECT_EQ(seen.size(), 64u);

  // Early-stop propagates across shards.
  int visited = 0;
  facade->ScanAll([&](TupleRef) { return ++visited < 10; });
  EXPECT_EQ(visited, 10);

  const HashIndex::HashStats stats = facade->Stats();
  EXPECT_GT(stats.buckets, 0u);
  EXPECT_GT(stats.avg_chain_length, 0.0);
}

TEST(PartitionedIndexTest, StorageBytesSumsShards) {
  auto rel = SmallPartitionRelation();
  for (int32_t k : testutil::ShuffledKeys(30)) rel->Insert({Value(k), Value(k)});
  auto* facade =
      static_cast<PartitionedOrderedIndex*>(AttachOrderedFacade(rel.get()));
  size_t sum = 0;
  for (const auto& shard : facade->shards()) {
    if (shard != nullptr) sum += shard->StorageBytes();
  }
  // Shard bytes plus the composite's own footprint (shard vector etc.).
  EXPECT_GE(facade->StorageBytes(), sum);
  EXPECT_LT(facade->StorageBytes(), sum + 4096u);
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace mmdb
