// The Section 4 preference ordering, rule by rule.

#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

using testutil::AttachKeyIndex;

TEST(PlannerTest, PrecomputedJoinBeatsEverything) {
  auto dept = testutil::IntRelation("dept", {1, 2});
  AttachKeyIndex(dept.get(), IndexKind::kTTree);
  Schema emp_schema({{"dept", Type::kPointer}, {"age", Type::kInt32}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, dept.get(), 0).ok());

  JoinSpec spec{&emp, 0, dept.get(), 0};
  JoinPlan plan = Planner::PlanJoin(spec);
  EXPECT_EQ(plan.method, JoinMethod::kPrecomputed);
}

TEST(PlannerTest, TreeMergeWhenBothIndicesExist) {
  auto a = testutil::IntRelation("a", {1, 2, 3});
  auto b = testutil::IntRelation("b", {2, 3, 4});
  AttachKeyIndex(a.get(), IndexKind::kTTree);
  AttachKeyIndex(b.get(), IndexKind::kTTree);
  JoinPlan plan = Planner::PlanJoin({a.get(), 0, b.get(), 0});
  EXPECT_EQ(plan.method, JoinMethod::kTreeMerge);
  EXPECT_NE(plan.outer_index, nullptr);
  EXPECT_NE(plan.inner_index, nullptr);
}

TEST(PlannerTest, HashJoinWhenNoIndices) {
  auto a = testutil::IntRelation("a", testutil::ShuffledKeys(100));
  auto b = testutil::IntRelation("b", testutil::ShuffledKeys(100));
  AttachKeyIndex(a.get(), IndexKind::kArray);  // primary scan vehicle only...
  AttachKeyIndex(b.get(), IndexKind::kArray);
  // Array indexes are ordered, so both-trees rule fires; use the seq field
  // (unindexed) to test the no-index default instead.
  JoinPlan plan = Planner::PlanJoin({a.get(), 1, b.get(), 1});
  EXPECT_EQ(plan.method, JoinMethod::kHashJoin);
}

TEST(PlannerTest, TreeJoinForSmallOuterWithInnerIndex) {
  auto small = testutil::IntRelation("small", testutil::ShuffledKeys(50));
  auto large = testutil::IntRelation("large", testutil::ShuffledKeys(1000));
  AttachKeyIndex(small.get(), IndexKind::kArray);
  AttachKeyIndex(large.get(), IndexKind::kTTree);
  // Join on seq of small (no index there) against key of large (T Tree).
  JoinPlan plan = Planner::PlanJoin({small.get(), 1, large.get(), 0});
  EXPECT_EQ(plan.method, JoinMethod::kTreeJoin);
  EXPECT_NE(plan.inner_index, nullptr);
}

TEST(PlannerTest, HashJoinAgainWhenOuterTooLarge) {
  // Same shape but |outer| = 80% of |inner|: past the ~60% crossover.
  auto outer = testutil::IntRelation("outer", testutil::ShuffledKeys(800));
  auto inner = testutil::IntRelation("inner", testutil::ShuffledKeys(1000));
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  AttachKeyIndex(inner.get(), IndexKind::kTTree);
  JoinPlan plan = Planner::PlanJoin({outer.get(), 1, inner.get(), 0});
  EXPECT_EQ(plan.method, JoinMethod::kHashJoin);
}

TEST(PlannerTest, ExistingHashIndexPreferredOverBuild) {
  auto outer = testutil::IntRelation("outer", testutil::ShuffledKeys(800));
  auto inner = testutil::IntRelation("inner", testutil::ShuffledKeys(1000));
  AttachKeyIndex(outer.get(), IndexKind::kArray);
  AttachKeyIndex(inner.get(), IndexKind::kModifiedLinearHash);
  JoinPlan plan = Planner::PlanJoin({outer.get(), 1, inner.get(), 0});
  EXPECT_EQ(plan.method, JoinMethod::kHashProbe);
  EXPECT_NE(plan.inner_hash, nullptr);
}

TEST(PlannerTest, SortMergeForHighDuplicatesSkewed) {
  auto a = testutil::IntRelation("a", {1, 1, 1, 1});
  auto b = testutil::IntRelation("b", {1, 1, 1, 1});
  AttachKeyIndex(a.get(), IndexKind::kTTree);
  AttachKeyIndex(b.get(), IndexKind::kTTree);
  JoinStats stats;
  stats.duplicate_pct = 85;
  stats.skewed = true;
  stats.semijoin_selectivity = 100;
  JoinPlan plan = Planner::PlanJoin({a.get(), 0, b.get(), 0}, stats);
  EXPECT_EQ(plan.method, JoinMethod::kSortMerge);
}

TEST(PlannerTest, UniformDuplicatesNeedHigherThreshold) {
  auto a = testutil::IntRelation("a", {1, 1});
  auto b = testutil::IntRelation("b", {1, 1});
  AttachKeyIndex(a.get(), IndexKind::kTTree);
  AttachKeyIndex(b.get(), IndexKind::kTTree);
  JoinStats stats;
  stats.duplicate_pct = 85;  // below the ~97% uniform crossover
  stats.skewed = false;
  JoinPlan plan = Planner::PlanJoin({a.get(), 0, b.get(), 0}, stats);
  EXPECT_EQ(plan.method, JoinMethod::kTreeMerge);
  stats.duplicate_pct = 98;
  plan = Planner::PlanJoin({a.get(), 0, b.get(), 0}, stats);
  EXPECT_EQ(plan.method, JoinMethod::kSortMerge);
}

TEST(PlannerTest, LowSelectivitySuppressesSortMerge) {
  auto a = testutil::IntRelation("a", {1, 1});
  auto b = testutil::IntRelation("b", {1, 1});
  AttachKeyIndex(a.get(), IndexKind::kTTree);
  AttachKeyIndex(b.get(), IndexKind::kTTree);
  JoinStats stats;
  stats.duplicate_pct = 90;
  stats.skewed = true;
  stats.semijoin_selectivity = 5;  // few matches: output small, merge wins
  JoinPlan plan = Planner::PlanJoin({a.get(), 0, b.get(), 0}, stats);
  EXPECT_EQ(plan.method, JoinMethod::kTreeMerge);
}

TEST(PlannerTest, ExecuteJoinDispatchesAllMethods) {
  auto a = testutil::IntRelation("a", {1, 2, 3});
  auto b = testutil::IntRelation("b", {2, 3, 4});
  auto* at = AttachKeyIndex(a.get(), IndexKind::kTTree);
  auto* bt = AttachKeyIndex(b.get(), IndexKind::kTTree);
  auto* bh = AttachKeyIndex(b.get(), IndexKind::kChainedBucketHash);
  JoinSpec spec{a.get(), 0, b.get(), 0};

  for (JoinMethod m :
       {JoinMethod::kTreeMerge, JoinMethod::kTreeJoin, JoinMethod::kHashProbe,
        JoinMethod::kHashJoin, JoinMethod::kSortMerge,
        JoinMethod::kNestedLoops}) {
    JoinPlan plan;
    plan.method = m;
    plan.outer_index = static_cast<const OrderedIndex*>(at);
    plan.inner_index = static_cast<const OrderedIndex*>(bt);
    plan.inner_hash = static_cast<const HashIndex*>(bh);
    TempList out = Planner::ExecuteJoin(spec, plan);
    EXPECT_EQ(out.size(), 2u) << JoinMethodName(m);
  }
}

TEST(PlannerTest, PlanSelectOrdering) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(10));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  AttachKeyIndex(rel.get(), IndexKind::kExtendibleHash);
  Predicate eq;
  eq.Add(0, CompareOp::kEq, Value(1));
  EXPECT_EQ(Planner::PlanSelect(*rel, eq), AccessPath::kHashLookup);
  Predicate range;
  range.Add(0, CompareOp::kGt, Value(1));
  EXPECT_EQ(Planner::PlanSelect(*rel, range), AccessPath::kTreeRange);
  Predicate unindexed;
  unindexed.Add(1, CompareOp::kEq, Value(1));
  EXPECT_EQ(Planner::PlanSelect(*rel, unindexed),
            AccessPath::kSequentialScan);
}

TEST(PlannerTest, JoinConvenienceRunsPlan) {
  auto a = testutil::IntRelation("a", {1, 2, 3});
  auto b = testutil::IntRelation("b", {2, 3, 4});
  AttachKeyIndex(a.get(), IndexKind::kTTree);
  AttachKeyIndex(b.get(), IndexKind::kTTree);
  JoinPlan plan;
  TempList out = Planner::Join({a.get(), 0, b.get(), 0}, JoinStats(), &plan);
  EXPECT_EQ(plan.method, JoinMethod::kTreeMerge);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_FALSE(plan.rationale.empty());
}

}  // namespace
}  // namespace mmdb
