// Duplicate elimination (Section 3.4): Sort Scan and Hashing must both
// produce exactly one row per distinct output-column combination.

#include <gtest/gtest.h>

#include <set>

#include "src/exec/project.h"
#include "src/exec/select.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

/// Materialized output rows as value tuples, sorted (order-insensitive).
std::multiset<std::vector<int32_t>> Rows(const TempList& list) {
  std::multiset<std::vector<int32_t>> out;
  for (size_t r = 0; r < list.size(); ++r) {
    std::vector<int32_t> row;
    for (size_t c = 0; c < list.descriptor().columns().size(); ++c) {
      row.push_back(list.GetValue(r, c).AsInt32());
    }
    out.insert(row);
  }
  return out;
}

TempList ListOf(const Relation& rel, std::vector<uint16_t> columns) {
  ResultDescriptor desc({&rel});
  for (uint16_t c : columns) desc.AddColumn(0, c);
  TempList list(desc);
  rel.ForEachTuple([&](TupleRef t) { list.Append1(t); });
  return list;
}

TEST(ProjectTest, NoDuplicatesIsIdentity) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  TempList in = ListOf(*rel, {0});
  EXPECT_EQ(ProjectSortScan(in).size(), 100u);
  EXPECT_EQ(ProjectHash(in).size(), 100u);
}

TEST(ProjectTest, DuplicatesCollapseToDistinct) {
  std::vector<int32_t> keys;
  for (int32_t k = 0; k < 20; ++k) {
    for (int c = 0; c <= k % 5; ++c) keys.push_back(k);
  }
  auto rel = testutil::IntRelation("r", keys);
  TempList in = ListOf(*rel, {0});
  TempList sorted = ProjectSortScan(in);
  TempList hashed = ProjectHash(in);
  EXPECT_EQ(sorted.size(), 20u);
  EXPECT_EQ(hashed.size(), 20u);
  EXPECT_EQ(Rows(sorted), Rows(hashed));
}

TEST(ProjectTest, BothMethodsAgreeOnRandomData) {
  Rng rng(4242);
  std::vector<int32_t> keys(1000);
  for (auto& k : keys) k = static_cast<int32_t>(rng.NextBounded(80));
  auto rel = testutil::IntRelation("r", keys);
  TempList in = ListOf(*rel, {0});

  std::set<int32_t> distinct(keys.begin(), keys.end());
  TempList sorted = ProjectSortScan(in);
  TempList hashed = ProjectHash(in);
  EXPECT_EQ(sorted.size(), distinct.size());
  EXPECT_EQ(hashed.size(), distinct.size());
  EXPECT_EQ(Rows(sorted), Rows(hashed));
}

TEST(ProjectTest, MultiColumnDistinctness) {
  // Same key but different seq => rows are NOT duplicates when seq is in
  // the output; ARE duplicates when only key is projected.
  auto rel = testutil::IntRelation("r", {7, 7, 7});
  TempList both = ListOf(*rel, {0, 1});
  EXPECT_EQ(ProjectHash(both).size(), 3u);
  EXPECT_EQ(ProjectSortScan(both).size(), 3u);
  TempList key_only = ListOf(*rel, {0});
  EXPECT_EQ(ProjectHash(key_only).size(), 1u);
  EXPECT_EQ(ProjectSortScan(key_only).size(), 1u);
}

TEST(ProjectTest, ProjectionIsDescriptorOnly) {
  // "No width reduction is ever done": the output TempList still holds
  // tuple pointers into the base relation, just fewer logical columns.
  auto rel = testutil::IntRelation("r", {1, 1, 2});
  TempList in = ListOf(*rel, {0});
  TempList out = ProjectHash(in);
  ASSERT_EQ(out.size(), 2u);
  Partition* p = rel->PartitionOf(out.At(0, 0));
  EXPECT_NE(p, nullptr);  // pointers still target base tuples
}

TEST(ProjectTest, EmptyInput) {
  auto rel = testutil::IntRelation("r", {});
  TempList in = ListOf(*rel, {0});
  EXPECT_EQ(ProjectSortScan(in).size(), 0u);
  EXPECT_EQ(ProjectHash(in).size(), 0u);
}

TEST(ProjectTest, AllIdenticalRows) {
  auto rel = testutil::IntRelation("r", std::vector<int32_t>(500, 9));
  TempList in = ListOf(*rel, {0});
  EXPECT_EQ(ProjectSortScan(in).size(), 1u);
  EXPECT_EQ(ProjectHash(in).size(), 1u);
}

TEST(ProjectTest, CompareAndHashRowsConsistency) {
  auto rel = testutil::IntRelation("r", {3, 3, 5});
  TempList in = ListOf(*rel, {0});
  EXPECT_EQ(CompareRows(in, 0, 1), 0);
  EXPECT_NE(CompareRows(in, 0, 2), 0);
  EXPECT_EQ(HashRow(in, 0), HashRow(in, 1));
}

TEST(ProjectTest, SortScanOutputIsSorted) {
  Rng rng(7);
  std::vector<int32_t> keys(200);
  for (auto& k : keys) k = static_cast<int32_t>(rng.NextBounded(50));
  auto rel = testutil::IntRelation("r", keys);
  TempList in = ListOf(*rel, {0});
  TempList out = ProjectSortScan(in);
  for (size_t r = 1; r < out.size(); ++r) {
    EXPECT_LT(out.GetValue(r - 1, 0).AsInt32(), out.GetValue(r, 0).AsInt32());
  }
}

}  // namespace
}  // namespace mmdb
