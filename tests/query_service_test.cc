// Tests for the concurrent query service (src/server): session lifecycle,
// admission control, graceful shutdown, lock-correct concurrent execution
// (no lost updates, index/relation consistency under mixed read/write
// sessions), and service metrics.  The stress tests here are the ones CI
// runs under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/server/query_service.h"
#include "src/server/work_queue.h"
#include "src/storage/tuple.h"
#include "src/util/counters.h"
#include "src/util/timer.h"
#include "src/util/trace.h"

namespace mmdb {
namespace {

using namespace std::chrono_literals;

WhereClause Eq(std::string field, Value v) {
  return WhereClause{std::move(field), CompareOp::kEq, std::move(v)};
}

// ---- BoundedWorkQueue unit tests -------------------------------------------

TEST(WorkQueueTest, PushPopFifoAndHighWater) {
  BoundedWorkQueue<int> q(3);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));  // full: admission control
  EXPECT_EQ(q.high_water(), 3u);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPush(4));  // room again
  EXPECT_EQ(q.size(), 3u);
}

TEST(WorkQueueTest, CloseDrainsThenStops) {
  BoundedWorkQueue<int> q(4);
  q.TryPush(7);
  q.TryPush(8);
  q.Close();
  EXPECT_FALSE(q.TryPush(9));  // closed: no intake
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // admitted items still drain
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.Pop(&v));  // closed + empty
}

TEST(WorkQueueTest, CloseWakesBlockedConsumer) {
  BoundedWorkQueue<int> q(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int v;
    bool got = q.Pop(&v);
    EXPECT_FALSE(got);
    returned = true;
  });
  std::this_thread::sleep_for(20ms);
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

// ---- Latency histogram ------------------------------------------------------

TEST(LatencyHistogramTest, RecordsAndEstimatesPercentiles) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(10.0);    // bucket [8,16)
  for (int i = 0; i < 10; ++i) h.Record(1000.0);  // bucket [512,1024)
  auto s = h.Snap();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_micros, 1000u);
  EXPECT_NEAR(s.MeanMicros(), (90 * 10.0 + 10 * 1000.0) / 100.0, 1e-9);
  EXPECT_LE(s.PercentileMicros(0.50), 16u);
  EXPECT_GE(s.PercentileMicros(0.99), 512u);
}

// ---- Service basics ---------------------------------------------------------

std::unique_ptr<Database> MakeEmpDb(int rows) {
  auto db = std::make_unique<Database>();
  db->CreateTable("emp", {{"id", Type::kInt32},
                          {"age", Type::kInt32},
                          {"name", Type::kString}});
  for (int i = 0; i < rows; ++i) {
    db->Insert("emp", {Value(i), Value(20 + i % 50),
                       Value("name" + std::to_string(i))});
  }
  return db;
}

TEST(QueryServiceTest, SelectInsertUpdateIncrementDelete) {
  auto db = MakeEmpDb(100);
  ServiceOptions opts;
  opts.workers = 2;
  QueryService service(db.get(), opts);
  Session* s = service.OpenSession();

  // Select: ages are 20..69; strictly greater than 64 leaves 65..69.
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {WhereClause{"age", CompareOp::kGt, Value(64)}};
  OpResult r = s->Select(sel);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows.size(), 10u);  // 5 ages * 2 rows each
  EXPECT_EQ(r.columns.size(), 3u);
  EXPECT_FALSE(r.plan.empty());

  // Insert.
  r = s->Insert(InsertSpec{"emp", {Value(100), Value(33), Value("newbie")}});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows_affected, 1u);

  // Update by match predicate.
  UpdateSpec up;
  up.table = "emp";
  up.match = Eq("id", Value(100));
  up.set_field = "name";
  up.set_value = Value("renamed");
  r = s->Update(up);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows_affected, 1u);

  // Increment.
  IncrementSpec inc;
  inc.table = "emp";
  inc.match = Eq("id", Value(100));
  inc.field = "age";
  inc.delta = 7;
  r = s->Increment(inc);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows_affected, 1u);

  SelectSpec check;
  check.table = "emp";
  check.where = {Eq("id", Value(100))};
  check.columns = {"emp.name", "emp.age"};
  r = s->Select(check);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "renamed");
  EXPECT_EQ(r.rows[0][1].AsInt32(), 40);

  // Delete.
  r = s->Delete(DeleteSpec{"emp", Eq("id", Value(100))});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rows_affected, 1u);
  r = s->Select(check);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rows.size(), 0u);

  Session::Counts counts = s->counts();
  EXPECT_EQ(counts.submitted, 7u);
  EXPECT_EQ(counts.completed, 7u);
  EXPECT_EQ(counts.aborted, 0u);
  service.CloseSession(s);
  service.Shutdown();

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 7u);
  EXPECT_EQ(stats.started, stats.completed + stats.failed + stats.aborted);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
}

TEST(QueryServiceTest, JoinedSelectThroughService) {
  Database db;
  db.CreateTable("dept", {{"id", Type::kInt32}, {"dname", Type::kString}});
  db.CreateTable("emp", {{"eid", Type::kInt32},
                         {"dept_id", Type::kInt32},
                         {"ename", Type::kString}});
  db.Insert("dept", {Value(1), Value("Toy")});
  db.Insert("dept", {Value(2), Value("Shoe")});
  for (int i = 0; i < 10; ++i) {
    db.Insert("emp", {Value(i), Value(1 + i % 2),
                      Value("e" + std::to_string(i))});
  }
  ServiceOptions opts;
  opts.workers = 2;
  QueryService service(&db, opts);
  Session* s = service.OpenSession();

  SelectSpec sel;
  sel.table = "dept";
  sel.where = {Eq("dname", Value("Toy"))};
  sel.join = JoinClause{"emp", "id", "dept_id", {}};
  sel.columns = {"emp.ename", "dept.dname"};
  OpResult r = s->Select(sel);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows.size(), 5u);
  for (const auto& row : r.rows) EXPECT_EQ(row[1].AsString(), "Toy");
}

TEST(QueryServiceTest, ValidatesNamesInsteadOfSilentlyDropping) {
  auto db = MakeEmpDb(5);
  QueryService service(db.get(), ServiceOptions{.workers = 1});
  Session* s = service.OpenSession();

  SelectSpec bad_field;
  bad_field.table = "emp";
  bad_field.where = {Eq("nope", Value(1))};
  EXPECT_EQ(s->Select(bad_field).status.code(), StatusCode::kNotFound);

  SelectSpec bad_table;
  bad_table.table = "ghosts";
  EXPECT_EQ(s->Select(bad_table).status.code(), StatusCode::kNotFound);

  UpdateSpec bad_set;
  bad_set.table = "emp";
  bad_set.match = Eq("id", Value(1));
  bad_set.set_field = "nope";
  bad_set.set_value = Value(1);
  EXPECT_EQ(s->Update(bad_set).status.code(), StatusCode::kNotFound);

  IncrementSpec bad_inc;
  bad_inc.table = "emp";
  bad_inc.match = Eq("id", Value(1));
  bad_inc.field = "name";  // not an integer field
  EXPECT_EQ(s->Increment(bad_inc).status.code(),
            StatusCode::kInvalidArgument);
}

// ---- Admission control and shutdown ----------------------------------------

TEST(QueryServiceTest, AdmissionControlRejectsWhenFull) {
  auto db = MakeEmpDb(10);
  ServiceOptions opts;
  opts.workers = 0;  // nothing drains: deterministic fullness
  opts.queue_depth = 2;
  QueryService service(db.get(), opts);
  Session* s = service.OpenSession();

  std::atomic<int> callbacks{0};
  std::atomic<int> shutdown_aborts{0};
  auto cb = [&](OpResult r) {
    ++callbacks;
    if (r.status.code() == StatusCode::kAborted) ++shutdown_aborts;
  };
  SelectSpec sel;
  sel.table = "emp";
  EXPECT_TRUE(service.Submit(s, Operation(sel), cb).ok());
  EXPECT_TRUE(service.Submit(s, Operation(sel), cb).ok());
  Status third = service.Submit(s, Operation(sel), cb);
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);

  service.Shutdown();
  // Both admitted ops got their callback (failed by shutdown: no workers
  // ever ran them); the rejected one did not.
  EXPECT_EQ(callbacks.load(), 2);
  EXPECT_EQ(shutdown_aborts.load(), 2);

  // Intake is closed for good.
  EXPECT_EQ(service.Submit(s, Operation(sel), cb).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(s->Select(sel).status.code(), StatusCode::kFailedPrecondition);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.queue_depth_hwm, 2u);
}

TEST(QueryServiceTest, ShutdownDrainsAdmittedWork) {
  auto db = MakeEmpDb(200);
  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_depth = 128;
  QueryService service(db.get(), opts);
  Session* s = service.OpenSession();

  std::atomic<int> callbacks{0};
  std::atomic<int> completed{0};
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {WhereClause{"name", CompareOp::kNe, Value("x")}};  // scan
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    Status st = service.Submit(s, Operation(sel), [&](OpResult r) {
      ++callbacks;
      if (r.ok()) ++completed;
    });
    if (st.ok()) ++admitted;
  }
  service.Shutdown();  // must drain everything admitted
  EXPECT_EQ(callbacks.load(), admitted);
  EXPECT_EQ(completed.load(), admitted);  // workers existed: all ran
}

// ---- Concurrency correctness ------------------------------------------------

// The canonical lost-update check: concurrent sessions increment shared
// counters through the service; with correct X locking around the
// read-modify-write, the final sum is exactly the number of increments.
TEST(QueryServiceStressTest, NoLostUpdatesOnCounterTable) {
  Database db;
  db.CreateTable("counters", {{"id", Type::kInt32}, {"value", Type::kInt64}});
  constexpr int kCounters = 4;
  for (int i = 0; i < kCounters; ++i) {
    db.Insert("counters", {Value(i), Value(int64_t{0})});
  }

  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_depth = 512;
  opts.lock_timeout = 2000ms;  // generous: TSan slows lock holders a lot
  opts.max_attempts = 64;
  QueryService service(&db, opts);

  constexpr int kClients = 4;
  constexpr int kIncrementsPerClient = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &failures, c] {
      Session* s = service.OpenSession();
      for (int i = 0; i < kIncrementsPerClient; ++i) {
        IncrementSpec inc;
        inc.table = "counters";
        inc.match = Eq("id", Value((c + i) % kCounters));
        inc.field = "value";
        inc.delta = 1;
        OpResult r = s->Increment(inc);
        if (!r.ok() || r.rows_affected != 1) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0);

  int64_t total = 0;
  const Relation* rel = db.GetTable("counters");
  rel->ForEachTuple([&](TupleRef t) {
    total += tuple::GetValue(t, rel->schema(), 1).AsInt64();
  });
  EXPECT_EQ(total, int64_t{kClients} * kIncrementsPerClient);
}

// Mixed select/insert/update/delete sessions against shared tables; then
// verify relation/index consistency: cardinality matches a full scan, and
// every surviving row is reachable through the primary index and the
// secondary hash index.
TEST(QueryServiceStressTest, MixedWorkloadKeepsIndexesConsistent) {
  Database db;
  db.CreateTable("items", {{"id", Type::kInt32},
                           {"grp", Type::kInt32},
                           {"payload", Type::kString}});
  ASSERT_NE(db.CreateIndex("items", "grp", IndexKind::kChainedBucketHash), nullptr);
  constexpr int kSeed = 300;
  for (int i = 0; i < kSeed; ++i) {
    db.Insert("items", {Value(i), Value(i % 10),
                        Value("p" + std::to_string(i))});
  }

  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_depth = 1024;
  opts.lock_timeout = 2000ms;
  opts.max_attempts = 64;
  QueryService service(&db, opts);

  constexpr int kOpsPerClient = 80;
  std::atomic<int> failures{0};

  auto reader = [&](int salt) {
    Session* s = service.OpenSession();
    for (int i = 0; i < kOpsPerClient; ++i) {
      SelectSpec sel;
      sel.table = "items";
      sel.where = {Eq("grp", Value((i + salt) % 10))};  // hash lookup
      if (!s->Select(sel).ok()) ++failures;
    }
  };
  auto inserter = [&] {
    Session* s = service.OpenSession();
    for (int i = 0; i < kOpsPerClient; ++i) {
      OpResult r = s->Insert(InsertSpec{
          "items",
          {Value(1000 + i), Value(i % 10), Value("new" + std::to_string(i))}});
      if (!r.ok()) ++failures;
    }
  };
  auto updater = [&] {
    Session* s = service.OpenSession();
    for (int i = 0; i < kOpsPerClient; ++i) {
      UpdateSpec up;
      up.table = "items";
      up.match = Eq("id", Value((i * 7) % kSeed));
      up.set_field = "payload";
      up.set_value = Value("upd" + std::to_string(i));
      OpResult r = s->Update(up);  // 0 rows is fine (deleted meanwhile)
      if (!r.ok()) ++failures;
    }
  };
  auto deleter = [&] {
    Session* s = service.OpenSession();
    for (int i = 0; i < kOpsPerClient; ++i) {
      OpResult r = s->Delete(DeleteSpec{"items", Eq("id", Value((i * 3) % kSeed))});
      if (!r.ok()) ++failures;
    }
  };

  std::vector<std::thread> clients;
  clients.emplace_back(reader, 0);
  clients.emplace_back(reader, 5);
  clients.emplace_back(inserter);
  clients.emplace_back(updater);
  clients.emplace_back(deleter);
  for (auto& t : clients) t.join();
  service.Shutdown();
  EXPECT_EQ(failures.load(), 0);

  // Invariant 1: full scan agrees with the relation's cardinality.
  Relation* rel = db.GetTable("items");
  size_t scanned = 0;
  std::vector<int32_t> ids;
  rel->ForEachTuple([&](TupleRef t) {
    ++scanned;
    ids.push_back(tuple::GetValue(t, rel->schema(), 0).AsInt32());
  });
  EXPECT_EQ(scanned, rel->cardinality());

  // Invariant 2: every surviving row is reachable through the primary
  // (T Tree on id) and secondary (chained hash on grp) indices.
  for (int32_t id : ids) {
    QueryResult qr = db.Query("items")
                         .Where("id", CompareOp::kEq, Value(id))
                         .Run();
    EXPECT_GE(qr.rows.size(), 1u) << "id " << id << " lost from an index";
  }
  size_t via_hash = 0;
  for (int g = 0; g < 10; ++g) {
    via_hash += db.Query("items")
                    .Where("grp", CompareOp::kEq, Value(g))
                    .Run()
                    .rows.size();
  }
  EXPECT_EQ(via_hash, rel->cardinality());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.started, stats.completed + stats.failed + stats.aborted);
  uint64_t latency_total = 0;
  for (const auto& h : stats.latency) latency_total += h.count;
  EXPECT_EQ(latency_total, stats.started);
}

// Worker threads fold their per-thread operation counters into the global
// accumulator on exit, so instrumentation survives the pool.
TEST(QueryServiceTest, WorkerCountersFoldIntoGlobalAccumulator) {
  counters::ResetAll();
  auto db = MakeEmpDb(200);
  {
    QueryService service(db.get(), ServiceOptions{.workers = 2});
    Session* s = service.OpenSession();
    SelectSpec sel;
    sel.table = "emp";
    sel.where = {Eq("id", Value(42))};
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(s->Select(sel).ok());
    service.Shutdown();
  }
#if defined(MMDB_COUNTERS)
  OpCounters total = counters::AccumulatedSnapshot();
  EXPECT_GT(total.comparisons + total.node_visits, 0u)
      << "worker-side index work was not folded: " << total.ToString();
#endif
}

// Regression: workers fold per completed query, not only at thread exit —
// a scrape taken while the pool is still alive must see the work already
// done (the old exit-only fold left the accumulator stale for the entire
// service lifetime).
TEST(QueryServiceTest, CountersFoldPerQueryWhileWorkersStillRun) {
  counters::ResetAll();
  auto db = MakeEmpDb(200);
  QueryService service(db.get(), ServiceOptions{.workers = 2});
  Session* s = service.OpenSession();
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {Eq("id", Value(42))};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(s->Select(sel).ok());
#if defined(MMDB_COUNTERS)
  // No Shutdown: the workers are alive and their thread-locals uncounted
  // unless the per-query fold happened.
  OpCounters total = counters::AccumulatedSnapshot();
  EXPECT_GT(total.comparisons + total.node_visits, 0u)
      << "per-query fold missing: " << total.ToString();
#endif
  service.Shutdown();
}

// ---- Tracing through the service -------------------------------------------

// The per-query spans (queue_wait + execute) must fit inside the latency
// the client measured around Execute() — they partition the same interval.
TEST(QueryServiceTest, TraceSpansSumWithinEndToEndLatency) {
  auto db = MakeEmpDb(500);
  QueryService service(db.get(), ServiceOptions{.workers = 1});
  Session* s = service.OpenSession();
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {Eq("age", Value(30))};

  trace::Enable();
  Timer e2e;
  ASSERT_TRUE(s->Select(sel).ok());
  const double e2e_micros = e2e.ElapsedMicros();
  trace::Disable();

  double queue_wait = 0.0, execute = 0.0, lock_wait = 0.0;
  int execute_spans = 0;
  for (const trace::SpanRecord& span : trace::Snapshot()) {
    const std::string name = span.name;
    if (name == "queue_wait") queue_wait += span.DurMicros();
    if (name == "execute") {
      execute += span.DurMicros();
      ++execute_spans;
    }
    if (name == "lock_wait") lock_wait += span.DurMicros();
  }
  ASSERT_EQ(execute_spans, 1);
  EXPECT_GT(execute, 0.0);
  // Generous slack: the client also pays promise/future wakeup latency,
  // so the span sum must come in *under* the end-to-end time.
  EXPECT_LE(queue_wait + execute, e2e_micros)
      << "queue_wait=" << queue_wait << " execute=" << execute
      << " e2e=" << e2e_micros;
  // Lock waits happen inside execution.
  EXPECT_LE(lock_wait, execute);
  service.Shutdown();
}

// ---- Metrics endpoint -------------------------------------------------------

// Scrape-and-parse: every former ServiceStats field must be present as an
// `mmdb_service_*` series with a value matching Stats(), and the lock
// manager's wait histograms must be exposed.
TEST(QueryServiceTest, MetricsTextExposesServiceStatsAndLockWaits) {
  auto db = MakeEmpDb(100);
  QueryService service(db.get(), ServiceOptions{.workers = 2});
  // The fixture load's auto-commit inserts take locks of their own (e.g.
  // a structure-X escalation to create the first partition), so the
  // structure-exclusive assertion below is a delta from this baseline.
  const std::string baseline_text = service.MetricsText();
  Session* s = service.OpenSession();
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {Eq("id", Value(7))};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s->Select(sel).ok());
  ASSERT_TRUE(s->Insert(InsertSpec{"emp", {Value(1000), Value(30),
                                           Value("new")}}).ok());

  const ServiceStats stats = service.Stats();
  const std::string text = service.MetricsText();

  // Parse `name value` lines into a map.
  std::map<std::string, long long> series;
  std::map<std::string, long long> baseline;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    series[line.substr(0, space)] = std::stoll(line.substr(space + 1));
  }
  std::istringstream bin(baseline_text);
  while (std::getline(bin, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    baseline[line.substr(0, space)] = std::stoll(line.substr(space + 1));
  }

  EXPECT_EQ(series["mmdb_service_submitted_total"],
            static_cast<long long>(stats.submitted));
  EXPECT_EQ(series["mmdb_service_rejected_total"],
            static_cast<long long>(stats.rejected));
  EXPECT_EQ(series["mmdb_service_started_total"],
            static_cast<long long>(stats.started));
  EXPECT_EQ(series["mmdb_service_completed_total"],
            static_cast<long long>(stats.completed));
  EXPECT_EQ(series["mmdb_service_failed_total"],
            static_cast<long long>(stats.failed));
  EXPECT_EQ(series["mmdb_service_aborted_total"],
            static_cast<long long>(stats.aborted));
  EXPECT_EQ(series["mmdb_service_retries_total"],
            static_cast<long long>(stats.retries));
  EXPECT_EQ(series["mmdb_service_sessions_opened_total"], 1);
  ASSERT_TRUE(series.count("mmdb_service_sessions_closed_total"));
  ASSERT_TRUE(series.count("mmdb_service_queue_depth"));
  ASSERT_TRUE(series.count("mmdb_service_queue_depth_hwm"));

  // Per-op latency histograms: the six selects+insert all recorded.
  EXPECT_EQ(series["mmdb_service_latency_micros_count{op=\"select\"}"], 5);
  EXPECT_EQ(series["mmdb_service_latency_micros_count{op=\"insert\"}"], 1);
  EXPECT_EQ(series["mmdb_service_queue_wait_micros_count"], 6);

  // Lock-wait histograms from the LockManager: reads took shared partition
  // locks; the insert reserved a partition exclusive (structure stays
  // shared — no global index on emp, so no structure-X escalation).
  EXPECT_GT(
      series["mmdb_lock_wait_micros_count{mode=\"shared\",scope=\"partition\"}"],
      0);
  EXPECT_GT(series["mmdb_lock_wait_micros_count{mode=\"shared\","
                   "scope=\"structure\"}"],
            0);
  EXPECT_GT(series["mmdb_lock_wait_micros_count{mode=\"exclusive\","
                   "scope=\"partition\"}"],
            0);
  EXPECT_EQ(series["mmdb_lock_wait_micros_count{mode=\"exclusive\","
                   "scope=\"structure\"}"],
            baseline["mmdb_lock_wait_micros_count{mode=\"exclusive\","
                     "scope=\"structure\"}"]);
  ASSERT_TRUE(series.count("mmdb_lock_timeouts_total"));

#if defined(MMDB_COUNTERS)
  // Accumulated OpCounters ride along as gauges.
  EXPECT_GT(series["mmdb_opcounters_comparisons"], 0);
#endif
  service.Shutdown();
}

// ---- DML-path regressions ---------------------------------------------------

TEST(QueryServiceTest, IncrementOverflowIsRejectedInsteadOfWrapping) {
  Database db;
  db.CreateTable("acct", {{"id", Type::kInt32},
                          {"bal32", Type::kInt32},
                          {"bal64", Type::kInt64}});
  db.Insert("acct", {Value(1), Value(std::numeric_limits<int32_t>::max()),
                     Value(std::numeric_limits<int64_t>::max())});
  QueryService service(&db, ServiceOptions{.workers = 1});
  Session* s = service.OpenSession();
  Relation* rel = db.GetTable("acct");
  TupleRef row = rel->primary_index()->Find(Value(1));
  ASSERT_NE(row, nullptr);

  // int32 at the ceiling: +1 used to wrap to INT32_MIN silently.
  IncrementSpec inc;
  inc.table = "acct";
  inc.match = Eq("id", Value(1));
  inc.field = "bal32";
  inc.delta = 1;
  OpResult r = s->Increment(inc);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tuple::GetValue(row, rel->schema(), 1).AsInt32(),
            std::numeric_limits<int32_t>::max())
      << "failed increment must leave the value untouched";

  // A huge negative delta stays representable: the arithmetic runs in 64
  // bits, so INT32_MAX - 4294967295 lands exactly on INT32_MIN.
  inc.delta = -int64_t{4294967295};
  r = s->Increment(inc);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows_affected, 1u);
  EXPECT_EQ(tuple::GetValue(row, rel->schema(), 1).AsInt32(),
            std::numeric_limits<int32_t>::min());

  // Underflow from the floor is rejected the same way.
  inc.delta = -1;
  r = s->Increment(inc);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tuple::GetValue(row, rel->schema(), 1).AsInt32(),
            std::numeric_limits<int32_t>::min());

  // int64 fields overflow-check too.
  inc.field = "bal64";
  inc.delta = 1;
  r = s->Increment(inc);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tuple::GetValue(row, rel->schema(), 2).AsInt64(),
            std::numeric_limits<int64_t>::max());
  service.Shutdown();
}

TEST(QueryServiceTest, DmlTargetLookupFollowsThePlannerAccessPath) {
  auto db = MakeEmpDb(1000);  // primary T Tree on id
  ASSERT_NE(db->CreateIndex("emp", "age", IndexKind::kChainedBucketHash),
            nullptr);

#if defined(MMDB_COUNTERS)
  const OpCounters base = counters::AccumulatedSnapshot();
#endif
  {
    QueryService service(db.get(), ServiceOptions{.workers = 1});
    Session* s = service.OpenSession();

    // Keyed on the primary tree: the DML find phase reports (and uses) the
    // same access path a SELECT with this predicate would.
    UpdateSpec up;
    up.table = "emp";
    up.match = Eq("id", Value(700));
    up.set_field = "age";
    up.set_value = Value(99);
    OpResult r = s->Update(up);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows_affected, 1u);
    EXPECT_NE(r.plan.find("dml match: tree lookup"), std::string::npos)
        << r.plan;

    // Keyed on the secondary hash index.
    DeleteSpec del;
    del.table = "emp";
    del.match = Eq("age", Value(99));
    r = s->Delete(del);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_NE(r.plan.find("dml match: hash lookup"), std::string::npos)
        << r.plan;
    service.Shutdown();  // workers fold their OpCounters on exit
  }
#if defined(MMDB_COUNTERS)
  // The keyed statements cost index-probe comparisons, not a 1000-row
  // sweep per statement: before DML routed through the planner, every
  // mutation walked the whole relation.
  const OpCounters keyed = counters::AccumulatedSnapshot() - base;
  EXPECT_GT(keyed.comparisons, 0u);
  EXPECT_LT(keyed.comparisons, 500u) << keyed.ToString();
#endif

  {
    QueryService service(db.get(), ServiceOptions{.workers = 1});
    Session* s = service.OpenSession();
    // No usable index: the planner (rightly) falls back to a scan.
    UpdateSpec up;
    up.table = "emp";
    up.match = WhereClause{"name", CompareOp::kEq, Value("name3")};
    up.set_field = "age";
    up.set_value = Value(31);
    OpResult r = s->Update(up);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_NE(r.plan.find("dml match: sequential scan"), std::string::npos)
        << r.plan;
    service.Shutdown();
  }
#if defined(MMDB_COUNTERS)
  // ... and the scan fallback really does sweep, which is what makes the
  // bound above meaningful.
  const OpCounters swept = counters::AccumulatedSnapshot() - base;
  EXPECT_GT(swept.comparisons, 900u) << swept.ToString();
#endif
}

// ---- EXPLAIN ANALYZE through the service ------------------------------------

TEST(QueryServiceTest, AnalyzeFlagReturnsPlanNodeTree) {
  auto db = MakeEmpDb(50);
  QueryService service(db.get(), ServiceOptions{.workers = 1});
  Session* s = service.OpenSession();
  SelectSpec sel;
  sel.table = "emp";
  sel.where = {Eq("age", Value(25))};
  sel.analyze = true;
  OpResult r = s->Select(sel);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_FALSE(r.analyze.empty());
  EXPECT_NE(r.analyze.find("query(emp)"), std::string::npos) << r.analyze;
  EXPECT_NE(r.analyze.find("cost="), std::string::npos);
  EXPECT_NE(r.analyze.find("rows=" + std::to_string(r.rows.size())),
            std::string::npos)
      << r.analyze;

  // Without the flag the field stays empty.
  sel.analyze = false;
  OpResult plain = s->Select(sel);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain.analyze.empty());
  service.Shutdown();
}

}  // namespace
}  // namespace mmdb
