// QueryBuilder end-to-end, including the paper's Query 1 and Query 2.

#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/core/query.h"

namespace mmdb {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The Figure 1 schema.
    db_.CreateTable("dept", {{"name", Type::kString}, {"id", Type::kInt32}});
    db_.CreateTable("emp", {{"name", Type::kString},
                            {"id", Type::kInt32},
                            {"age", Type::kInt32},
                            {"dept_id", Type::kPointer}});
    ASSERT_TRUE(db_.DeclareForeignKey("emp", "dept_id", "dept", "id").ok());
    db_.CreateIndex("emp", "age", IndexKind::kTTree);

    db_.Insert("dept", {Value("Toy"), Value(459)});
    db_.Insert("dept", {Value("Shoe"), Value(409)});
    db_.Insert("dept", {Value("Linen"), Value(411)});
    db_.Insert("dept", {Value("Paint"), Value(455)});

    db_.Insert("emp", {Value("Dave"), Value(23), Value(24), Value(459)});
    db_.Insert("emp", {Value("Suzan"), Value(12), Value(27), Value(459)});
    db_.Insert("emp", {Value("Yuman"), Value(44), Value(54), Value(411)});
    db_.Insert("emp", {Value("Jane"), Value(43), Value(47), Value(411)});
    db_.Insert("emp", {Value("Cindy"), Value(22), Value(22), Value(409)});
    db_.Insert("emp", {Value("Al"), Value(51), Value(67), Value(409)});
  }

  Database db_;
};

TEST_F(QueryTest, SimpleSelection) {
  QueryResult r = db_.Query("emp")
                      .Where("age", CompareOp::kGt, 40)
                      .Select({"emp.name", "emp.age"})
                      .Run();
  EXPECT_EQ(r.rows.size(), 3u);  // Yuman 54, Jane 47, Al 67
  EXPECT_NE(r.plan.find("tree range"), std::string::npos) << r.plan;
}

TEST_F(QueryTest, Query1SelectionWithPrecomputedJoin) {
  // "Retrieve the Employee name, Employee age, and Department name for all
  // employees over age 65."
  QueryResult r = db_.Query("emp")
                      .Where("age", CompareOp::kGt, 65)
                      .Select({"emp.name", "emp.age", "emp.dept_id.name"})
                      .Run();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows.GetValue(0, 0), Value("Al"));
  EXPECT_EQ(r.rows.GetValue(0, 1), Value(67));
  EXPECT_EQ(r.rows.GetValue(0, 2), Value("Shoe"));
}

TEST_F(QueryTest, Query2JoinWithSelection) {
  // "Retrieve the names of all employees who work in the Toy or Shoe
  // Departments" — run as two selections here (Toy), exercising the join.
  QueryResult r = db_.Query("dept")
                      .Where("name", CompareOp::kEq, "Toy")
                      .JoinWith("emp", "id", "dept_id")
                      .Select({"emp.name"})
                      .Run();
  // emp.dept_id is a pointer field; joining dept.id against it compares a
  // pointer to an int and yields nothing — the meaningful join goes the
  // other direction, via the precomputed pointers:
  QueryResult r2 = db_.Query("emp")
                       .JoinWith("dept", "dept_id", "id")
                       .WhereJoined("name", CompareOp::kEq, "Toy")
                       .Select({"emp.name"})
                       .Run();
  EXPECT_EQ(r2.rows.size(), 2u);  // Dave, Suzan
  EXPECT_NE(r2.plan.find("precomputed"), std::string::npos) << r2.plan;
  (void)r;
}

TEST_F(QueryTest, DefaultColumnsAreDrivingTable) {
  QueryResult r = db_.Query("dept").Run();
  EXPECT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows.descriptor().columns().size(), 2u);
}

TEST_F(QueryTest, DistinctEliminatesDuplicates) {
  QueryResult r = db_.Query("emp").Select({"emp.dept_id.name"}).Distinct().Run();
  EXPECT_EQ(r.rows.size(), 3u);  // Toy, Linen, Shoe
  EXPECT_NE(r.plan.find("hashing"), std::string::npos);
}

TEST_F(QueryTest, ValueJoinBetweenTables) {
  // Join emp.id against dept.id (no matches expected: ids disjoint).
  QueryResult r = db_.Query("emp")
                      .JoinWith("dept", "id", "id")
                      .Select({"emp.name"})
                      .Run();
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(QueryTest, ErrorsAreReported) {
  QueryResult r = db_.Query("nope").Run();
  EXPECT_NE(r.plan.find("error"), std::string::npos);
  EXPECT_EQ(r.rows.size(), 0u);

  QueryResult bad_col = db_.Query("emp").Select({"emp.bogus"}).Run();
  EXPECT_NE(bad_col.plan.find("error"), std::string::npos);
}

TEST_F(QueryTest, OrderBySelectedSortsRows) {
  QueryResult r = db_.Query("emp")
                      .Select({"emp.age", "emp.name"})
                      .OrderBySelected()
                      .Run();
  ASSERT_EQ(r.rows.size(), 6u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows.GetValue(i - 1, 0).AsInt32(),
              r.rows.GetValue(i, 0).AsInt32());
  }
  EXPECT_NE(r.plan.find("order by"), std::string::npos);
}

TEST_F(QueryTest, DistinctThenOrderBy) {
  QueryResult r = db_.Query("emp")
                      .Select({"emp.dept_id.name"})
                      .Distinct()
                      .OrderBySelected()
                      .Run();
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows.GetValue(0, 0), Value("Linen"));
  EXPECT_EQ(r.rows.GetValue(1, 0), Value("Shoe"));
  EXPECT_EQ(r.rows.GetValue(2, 0), Value("Toy"));
}

TEST_F(QueryTest, EqualitySelectionUsesDefaultPrimaryIndex) {
  // CreateTable added a T Tree on the first field ("name").
  QueryResult r = db_.Query("emp")
                      .Where("name", CompareOp::kEq, "Cindy")
                      .Select({"emp.age"})
                      .Run();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows.GetValue(0, 0), Value(22));
  EXPECT_NE(r.plan.find("tree lookup"), std::string::npos) << r.plan;
}

}  // namespace
}  // namespace mmdb
