// Crash recovery (Section 2.4): disk copy + change-accumulation log merge,
// working-set-first ordering, foreign-key pointer resolution.

#include <gtest/gtest.h>

#include "src/txn/recovery.h"
#include "src/txn/transaction.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : device_(&log_, &disk_), mgr_(&catalog_, &log_, &locks_) {}

  Relation* MakeRel(Catalog* catalog, const std::string& name) {
    Relation* rel = catalog->CreateRelation(
        name, Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}));
    testutil::AttachKeyIndex(rel, IndexKind::kTTree);
    return rel;
  }

  Catalog catalog_;
  StableLogBuffer log_;
  DiskImage disk_;
  LogDevice device_;
  LockManager locks_;
  TransactionManager mgr_;
};

TEST_F(RecoveryTest, CheckpointOnlyRoundTrip) {
  Relation* rel = MakeRel(&catalog_, "r");
  for (int i = 0; i < 100; ++i) rel->Insert({Value(i), Value(i)});
  disk_.CheckpointRelation(*rel);

  Catalog fresh;
  Relation* restored = MakeRel(&fresh, "r");
  RecoveryManager recovery(&disk_, &device_);
  ASSERT_TRUE(recovery.RecoverRelation(restored).ok());
  ASSERT_TRUE(recovery.ResolvePointers(fresh).ok());

  EXPECT_EQ(restored->cardinality(), 100u);
  EXPECT_EQ(recovery.progress().tuples_loaded, 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(restored->primary_index()->Find(Value(i)), nullptr);
  }
}

TEST_F(RecoveryTest, UnpropagatedLogRecordsMergedOnTheFly) {
  Relation* rel = MakeRel(&catalog_, "r");
  TupleRef doomed = rel->Insert({Value(1), Value(0)});
  rel->Insert({Value(2), Value(1)});
  disk_.CheckpointRelation(*rel);  // disk copy has {1, 2}

  // Post-checkpoint committed work: insert 3, update 2 -> 20, delete 1.
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(3), Value(2)}).ok());
  TupleRef two = rel->primary_index()->Find(Value(2));
  ASSERT_TRUE(txn->Update("r", two, 0, Value(20)).ok());
  ASSERT_TRUE(txn->Delete("r", doomed).ok());
  ASSERT_TRUE(txn->Commit().ok());

  // The log device pumped but did NOT propagate: recovery must merge.
  EXPECT_EQ(device_.Pump(), 3u);

  Catalog fresh;
  Relation* restored = MakeRel(&fresh, "r");
  RecoveryManager recovery(&disk_, &device_);
  ASSERT_TRUE(recovery.RecoverRelation(restored).ok());
  EXPECT_EQ(recovery.progress().log_records_merged, 3u);
  EXPECT_EQ(restored->cardinality(), 2u);
  EXPECT_EQ(restored->primary_index()->Find(Value(1)), nullptr);   // deleted
  EXPECT_EQ(restored->primary_index()->Find(Value(2)), nullptr);   // updated
  EXPECT_NE(restored->primary_index()->Find(Value(20)), nullptr);
  EXPECT_NE(restored->primary_index()->Find(Value(3)), nullptr);   // inserted
}

TEST_F(RecoveryTest, PropagatedRecordsNotDoubleApplied) {
  Relation* rel = MakeRel(&catalog_, "r");
  rel->Insert({Value(1), Value(0)});
  disk_.CheckpointRelation(*rel);
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(2), Value(1)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  device_.RunCycle();  // fully propagated to the disk copy
  EXPECT_EQ(device_.accumulated(), 0u);

  Catalog fresh;
  Relation* restored = MakeRel(&fresh, "r");
  RecoveryManager recovery(&disk_, &device_);
  ASSERT_TRUE(recovery.RecoverRelation(restored).ok());
  EXPECT_EQ(restored->cardinality(), 2u);
  EXPECT_EQ(recovery.progress().log_records_merged, 0u);
}

TEST_F(RecoveryTest, PartitionCreatedAfterCheckpointExistsOnlyInLog) {
  // An insert that lands in a brand-new partition is recoverable even
  // though the disk copy has never seen that partition.
  Relation* rel = catalog_.CreateRelation(
      "r", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}),
      [] {
        Relation::Options o;
        o.partition.slot_capacity = 2;
        return o;
      }());
  testutil::AttachKeyIndex(rel, IndexKind::kTTree);
  rel->Insert({Value(1), Value(0)});
  rel->Insert({Value(2), Value(1)});
  disk_.CheckpointRelation(*rel);  // partition 0 only

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(3), Value(2)}).ok());  // partition 1
  ASSERT_TRUE(txn->Commit().ok());
  device_.Pump();

  Catalog fresh;
  Relation* restored = catalog_.Get("ignored") == nullptr
                           ? fresh.CreateRelation(
                                 "r", Schema({{"key", Type::kInt32},
                                              {"seq", Type::kInt32}}))
                           : nullptr;
  testutil::AttachKeyIndex(restored, IndexKind::kTTree);
  RecoveryManager recovery(&disk_, &device_);
  EXPECT_EQ(recovery.KnownPartitions("r").size(), 2u);
  ASSERT_TRUE(recovery.RecoverRelation(restored).ok());
  EXPECT_EQ(restored->cardinality(), 3u);
  EXPECT_NE(restored->primary_index()->Find(Value(3)), nullptr);
}

TEST_F(RecoveryTest, WorkingSetPartitionsLoadFirst) {
  Relation::Options opt;
  opt.partition.slot_capacity = 8;
  Relation* rel = catalog_.CreateRelation(
      "r", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}), opt);
  testutil::AttachKeyIndex(rel, IndexKind::kTTree);
  for (int i = 0; i < 64; ++i) rel->Insert({Value(i), Value(i)});
  disk_.CheckpointRelation(*rel);
  ASSERT_GE(rel->partitions().size(), 8u);

  Catalog fresh;
  Relation* restored = fresh.CreateRelation(
      "r", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}), opt);
  testutil::AttachKeyIndex(restored, IndexKind::kTTree);
  RecoveryManager recovery(&disk_, &device_);
  // Prioritize partition 5 (the "working set"), then load the rest.
  ASSERT_TRUE(recovery.LoadPartition(restored, 5).ok());
  // Tuples of partition 5 are usable immediately...
  EXPECT_EQ(restored->partitions().size(), 6u);  // 0..5 exist (0-4 empty)
  EXPECT_GT(restored->cardinality(), 0u);
  // ...and the background pass fills in the remainder.
  ASSERT_TRUE(recovery.RecoverRelation(restored, {5}).ok());
  EXPECT_EQ(restored->cardinality(), 64u);
}

TEST_F(RecoveryTest, ForeignKeyPointersResolveAcrossRelations) {
  Relation* dept = MakeRel(&catalog_, "dept");
  Relation* emp = catalog_.CreateRelation(
      "emp", Schema({{"dept", Type::kPointer}, {"age", Type::kInt32}}));
  auto ops = std::make_shared<FieldKeyOps>(&emp->schema(), 1);
  auto index = CreateIndex(IndexKind::kTTree, ops, IndexConfig());
  index->set_key_fields({1});
  emp->AttachIndex(std::move(index));
  ASSERT_TRUE(emp->DeclareForeignKey(0, dept, 0).ok());

  dept->Insert({Value(100), Value(0)});
  dept->Insert({Value(200), Value(1)});
  ASSERT_NE(emp->Insert({Value(200), Value(30)}), nullptr);
  disk_.CheckpointRelation(*dept);
  disk_.CheckpointRelation(*emp);

  Catalog fresh;
  Relation* dept2 = MakeRel(&fresh, "dept");
  Relation* emp2 = fresh.CreateRelation(
      "emp", Schema({{"dept", Type::kPointer}, {"age", Type::kInt32}}));
  auto ops2 = std::make_shared<FieldKeyOps>(&emp2->schema(), 1);
  auto index2 = CreateIndex(IndexKind::kTTree, ops2, IndexConfig());
  index2->set_key_fields({1});
  emp2->AttachIndex(std::move(index2));
  ASSERT_TRUE(emp2->DeclareForeignKey(0, dept2, 0).ok());

  RecoveryManager recovery(&disk_, &device_);
  ASSERT_TRUE(recovery.RecoverRelation(emp2).ok());   // FK source first:
  ASSERT_TRUE(recovery.RecoverRelation(dept2).ok());  // order must not matter
  ASSERT_TRUE(recovery.ResolvePointers(fresh).ok());
  EXPECT_EQ(recovery.progress().pointers_resolved, 1u);

  TupleRef e = emp2->primary_index()->Find(Value(30));
  ASSERT_NE(e, nullptr);
  TupleRef d = tuple::GetPointer(e, emp2->schema().offset(0));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(testutil::KeyOf(d, *dept2), 200);
}

TEST_F(RecoveryTest, MissingForeignRelationFailsPointerResolution) {
  Relation* dept = MakeRel(&catalog_, "dept");
  Relation* emp = catalog_.CreateRelation(
      "emp", Schema({{"dept", Type::kPointer}}));
  auto ops = std::make_shared<SelfPointerKeyOps>();
  auto index = CreateIndex(IndexKind::kTTree, std::move(ops), IndexConfig());
  emp->AttachIndex(std::move(index));
  ASSERT_TRUE(emp->DeclareForeignKey(0, dept, 0).ok());
  dept->Insert({Value(1), Value(0)});
  ASSERT_NE(emp->Insert({Value(1)}), nullptr);
  disk_.CheckpointRelation(*emp);

  Catalog fresh;  // note: no "dept" relation recreated
  Relation* emp2 = fresh.CreateRelation(
      "emp", Schema({{"dept", Type::kPointer}}));
  Relation* dept2 = MakeRel(&fresh, "dept_renamed");
  auto index2 = CreateIndex(IndexKind::kTTree,
                            std::make_shared<SelfPointerKeyOps>(),
                            IndexConfig());
  emp2->AttachIndex(std::move(index2));
  ASSERT_TRUE(emp2->DeclareForeignKey(0, dept2, 0).ok());
  RecoveryManager recovery(&disk_, &device_);
  ASSERT_TRUE(recovery.RecoverRelation(emp2).ok());
  EXPECT_FALSE(recovery.ResolvePointers(fresh).ok());
}

}  // namespace
}  // namespace mmdb
