#include <gtest/gtest.h>

#include "src/index/ttree.h"
#include "src/storage/relation.h"
#include "src/storage/tuple.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

using testutil::AttachKeyIndex;
using testutil::KeyOf;

TEST(RelationTest, InsertAndCardinality) {
  auto rel = testutil::IntRelation("r", {5, 3, 8});
  EXPECT_EQ(rel->cardinality(), 3u);
  EXPECT_EQ(rel->name(), "r");
}

TEST(RelationTest, GrowsPartitionsAsNeeded) {
  Schema s({{"k", Type::kInt32}});
  Relation::Options opt;
  opt.partition.slot_capacity = 16;
  Relation rel("r", s, opt);
  for (int i = 0; i < 100; ++i) rel.Insert({Value(i)});
  EXPECT_EQ(rel.cardinality(), 100u);
  EXPECT_GE(rel.partitions().size(), 100u / 16);
  // Every tuple reachable through a full scan.
  int count = 0;
  rel.ForEachTuple([&](TupleRef) { ++count; });
  EXPECT_EQ(count, 100);
}

TEST(RelationTest, IndexMaintainedOnInsertAndDelete) {
  auto rel = testutil::IntRelation("r", {});
  TupleIndex* index = AttachKeyIndex(rel.get(), IndexKind::kTTree);
  TupleRef t5 = rel->Insert({Value(5), Value(0)});
  rel->Insert({Value(7), Value(1)});
  EXPECT_EQ(index->size(), 2u);
  EXPECT_EQ(index->Find(Value(5)), t5);
  ASSERT_TRUE(rel->Delete(t5).ok());
  EXPECT_EQ(index->size(), 1u);
  EXPECT_EQ(index->Find(Value(5)), nullptr);
  EXPECT_EQ(rel->cardinality(), 1u);
}

TEST(RelationTest, AttachIndexBulkLoadsExistingTuples) {
  auto rel = testutil::IntRelation("r", {4, 1, 3, 2});
  TupleIndex* index = AttachKeyIndex(rel.get(), IndexKind::kTTree);
  EXPECT_EQ(index->size(), 4u);
  EXPECT_EQ(testutil::CollectKeys(*index, *rel),
            (std::vector<int32_t>{1, 2, 3, 4}));
}

TEST(RelationTest, UniqueIndexRejectsDuplicateInsert) {
  auto rel = testutil::IntRelation("r", {});
  IndexConfig config;
  config.unique = true;
  AttachKeyIndex(rel.get(), IndexKind::kTTree, config);
  EXPECT_NE(rel->Insert({Value(5), Value(0)}), nullptr);
  EXPECT_EQ(rel->Insert({Value(5), Value(1)}), nullptr);  // rejected
  EXPECT_EQ(rel->cardinality(), 1u);
}

TEST(RelationTest, UniqueRejectionRollsBackOtherIndexes) {
  auto rel = testutil::IntRelation("r", {});
  AttachKeyIndex(rel.get(), IndexKind::kChainedBucketHash);  // non-unique
  IndexConfig config;
  config.unique = true;
  AttachKeyIndex(rel.get(), IndexKind::kTTree, config);
  rel->Insert({Value(5), Value(0)});
  EXPECT_EQ(rel->Insert({Value(5), Value(1)}), nullptr);
  // The hash index must not have kept the phantom tuple.
  EXPECT_EQ(rel->indexes()[0]->size(), 1u);
  EXPECT_EQ(rel->indexes()[1]->size(), 1u);
}

TEST(RelationTest, UpdateFieldRewritesKeyedIndexes) {
  auto rel = testutil::IntRelation("r", {10, 20});
  TupleIndex* index = AttachKeyIndex(rel.get(), IndexKind::kTTree);
  TupleRef t = index->Find(Value(10));
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(rel->UpdateField(t, 0, Value(15)).ok());
  EXPECT_EQ(index->Find(Value(10)), nullptr);
  EXPECT_EQ(index->Find(Value(15)), t);
  EXPECT_EQ(KeyOf(t, *rel), 15);
}

TEST(RelationTest, UpdateFieldUniqueConflictRefused) {
  auto rel = testutil::IntRelation("r", {});
  IndexConfig config;
  config.unique = true;
  TupleIndex* index = AttachKeyIndex(rel.get(), IndexKind::kTTree, config);
  TupleRef a = rel->Insert({Value(1), Value(0)});
  rel->Insert({Value(2), Value(1)});
  Status s = rel->UpdateField(a, 0, Value(2));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(index->Find(Value(1)), a);  // unchanged
}

TEST(RelationTest, StringGrowthRelocatesWithForwarding) {
  Schema schema({{"name", Type::kString}, {"id", Type::kInt32}});
  Relation::Options opt;
  opt.partition.slot_capacity = 8;
  opt.partition.heap_bytes = 64;
  Relation rel("r", schema, opt);
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), 1);
  auto index = CreateIndex(IndexKind::kTTree, ops, IndexConfig());
  index->set_key_fields({1});
  TupleIndex* raw = rel.AttachIndex(std::move(index));

  TupleRef t = rel.Insert({Value("short"), Value(7)});
  ASSERT_NE(t, nullptr);
  // Grow past the partition's tiny heap: the tuple must move.
  std::string big(60, 'z');
  ASSERT_TRUE(rel.UpdateField(t, 0, Value(big)).ok());
  TupleRef now = rel.Resolve(t);
  EXPECT_NE(now, t);  // relocated, old slot forwards
  EXPECT_EQ(tuple::GetString(now, schema.offset(0)), big);
  EXPECT_EQ(raw->Find(Value(7)), now);  // index rewritten to new address
  // Old address still routes through the forwarding pointer.
  EXPECT_EQ(rel.Resolve(t), now);
}

TEST(RelationTest, ForeignKeyMaterializedAsPointer) {
  auto dept = testutil::IntRelation("dept", {100, 200});
  AttachKeyIndex(dept.get(), IndexKind::kTTree);
  Schema emp_schema({{"dept", Type::kPointer}, {"age", Type::kInt32}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, dept.get(), 0).ok());

  TupleRef e = emp.Insert({Value(200), Value(30)});  // resolves 200 -> pointer
  ASSERT_NE(e, nullptr);
  TupleRef d = tuple::GetPointer(e, emp_schema.offset(0));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(KeyOf(d, *dept), 200);
}

TEST(RelationTest, DanglingForeignKeyRejected) {
  auto dept = testutil::IntRelation("dept", {100});
  AttachKeyIndex(dept.get(), IndexKind::kTTree);
  Schema emp_schema({{"dept", Type::kPointer}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, dept.get(), 0).ok());
  EXPECT_EQ(emp.Insert({Value(999)}), nullptr);
}

TEST(RelationTest, ForeignKeyDeclValidation) {
  auto dept = testutil::IntRelation("dept", {1});
  Schema emp_schema({{"dept", Type::kPointer}, {"age", Type::kInt32}});
  Relation emp("emp", emp_schema);
  EXPECT_FALSE(emp.DeclareForeignKey(1, dept.get(), 0).ok());  // not kPointer
  EXPECT_FALSE(emp.DeclareForeignKey(0, dept.get(), 9).ok());  // bad target
  EXPECT_TRUE(emp.DeclareForeignKey(0, dept.get(), 0).ok());
  EXPECT_FALSE(emp.DeclareForeignKey(0, dept.get(), 0).ok());  // duplicate
}

TEST(RelationTest, PartitionOfAndIdOfRoundTrip) {
  auto rel = testutil::IntRelation("r", {1, 2, 3});
  TupleRef t = nullptr;
  rel->ForEachTuple([&](TupleRef u) {
    if (t == nullptr) t = u;
  });
  ASSERT_NE(t, nullptr);
  Partition* p = rel->PartitionOf(t);
  ASSERT_NE(p, nullptr);
  TupleId tid = rel->IdOf(t);
  EXPECT_EQ(rel->RefOf(tid), t);
  EXPECT_EQ(rel->PartitionOf(reinterpret_cast<TupleRef>(&p)), nullptr);
}

TEST(RelationTest, InsertAtPlacesExactly) {
  auto rel = testutil::IntRelation("r", {});
  TupleIndex* index = AttachKeyIndex(rel.get(), IndexKind::kTTree);
  TupleRef t = rel->InsertAt(TupleId{2, 17}, {Value(5), Value(0)});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(rel->IdOf(t).partition, 2u);
  EXPECT_EQ(rel->IdOf(t).slot, 17u);
  EXPECT_EQ(index->Find(Value(5)), t);
  EXPECT_EQ(rel->partitions().size(), 3u);  // 0,1,2 created
}

TEST(RelationTest, DetachIndexRules) {
  auto rel = testutil::IntRelation("r", {1});
  TupleIndex* a = AttachKeyIndex(rel.get(), IndexKind::kTTree);
  TupleIndex* b = AttachKeyIndex(rel.get(), IndexKind::kChainedBucketHash);
  // Primary cannot go while secondaries exist.
  EXPECT_FALSE(rel->DetachIndex(a->name()).ok());
  EXPECT_TRUE(rel->DetachIndex(b->name()).ok());
  // Last index cannot go while tuples exist (Section 2.1).
  EXPECT_FALSE(rel->DetachIndex(a->name()).ok());
  EXPECT_FALSE(rel->DetachIndex("nonexistent").ok());
}

TEST(RelationTest, DeleteRejectsForeignTuple) {
  auto r1 = testutil::IntRelation("a", {1});
  auto r2 = testutil::IntRelation("b", {1});
  TupleRef foreign = nullptr;
  r2->ForEachTuple([&](TupleRef t) { foreign = t; });
  EXPECT_FALSE(r1->Delete(foreign).ok());
}

}  // namespace
}  // namespace mmdb
