// Log shipping end to end: size-rolled segments + manifest on the primary,
// continuous replay on a read replica over the real wire protocol, typed
// read-only rejection, corruption handling on shipped segments, retention
// racing a slow replica, point-in-time recovery, and promotion.

#include "src/repl/replica.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/durability.h"
#include "src/core/shell.h"
#include "src/net/server.h"
#include "src/repl/shipper.h"
#include "src/server/query_service.h"
#include "src/storage/tuple.h"
#include "src/txn/log_format.h"
#include "src/util/env.h"

namespace mmdb {
namespace {

using std::chrono::milliseconds;

constexpr char kPrimaryDir[] = "dur";
constexpr char kMirrorDir[] = "rep";

void MakeTable(Database* db) {
  ASSERT_NE(db->CreateTable("t", {{"id", Type::kInt32}, {"v", Type::kInt32}}),
            nullptr);
}

/// Commits one (id, v) row and waits for durability; returns the commit
/// LSN (0 on failure).
uint64_t AckedInsert(Database* db, int32_t id, int32_t v) {
  std::unique_ptr<Transaction> txn = db->Begin();
  if (!txn->Insert("t", {Value(id), Value(v)}).ok()) {
    txn->Abort();
    return 0;
  }
  if (!txn->Commit().ok()) return 0;
  if (!db->WaitDurable(txn->commit_lsn()).ok()) return 0;
  return txn->commit_lsn();
}

std::set<int32_t> LiveIds(Database* db) {
  std::set<int32_t> ids;
  Relation* rel = db->GetTable("t");
  if (rel == nullptr) return ids;
  const size_t off = rel->schema().offset(0);
  for (const auto& p : rel->partitions()) {
    p->ForEachLive([&](TupleRef t) { ids.insert(tuple::GetInt32(t, off)); });
  }
  return ids;
}

/// A serving primary: database + durability + query service + net server
/// with the log-shipping handler installed.
class Primary {
 public:
  void Start(uint64_t wal_segment_bytes, uint64_t wal_retain_segments) {
    MakeTable(&db);
    DurabilityOptions options;
    options.mode = DurabilityMode::kSync;
    options.dir = kPrimaryDir;
    options.env = &env;
    options.flush_interval = milliseconds(50);
    options.wal_segment_bytes = wal_segment_bytes;
    options.wal_retain_segments = wal_retain_segments;
    ASSERT_TRUE(db.EnableDurability(options).ok());

    shipper = std::make_unique<repl::Shipper>(&db);
    service = std::make_unique<QueryService>(&db);
    net::ServerOptions server_options;
    server_options.port = 0;
    server = std::make_unique<net::Server>(service.get(), server_options);
    repl::Shipper* s = shipper.get();
    server->set_repl_handler(
        [s](const std::string& request) { return s->HandleRequest(request); });
    ASSERT_TRUE(server->Start().ok());
  }

  uint16_t port() const { return server->port(); }

  InMemEnv env;
  Database db;
  std::unique_ptr<repl::Shipper> shipper;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
};

repl::ReplicaOptions MirrorOptions(const Primary& primary, Env* env) {
  repl::ReplicaOptions options;
  options.primary_port = primary.port();
  options.dir = kMirrorDir;
  options.env = env;
  options.poll_interval = milliseconds(5);
  options.reconnect_backoff = milliseconds(20);
  return options;
}

TEST(ReplShipperTest, SizeRollingSealsSegmentsIntoAContiguousChain) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/128, /*wal_retain_segments=*/100);
  uint64_t last = 0;
  for (int32_t i = 0; i < 30; ++i) last = AckedInsert(&primary.db, i, i);
  ASSERT_GT(last, 0u);

  const WalShipState state = primary.db.durability()->ShipState();
  ASSERT_GE(state.sealed.size(), 2u) << "128-byte segments must roll";
  // The chain is contiguous, every sealed file exists at its sealed size,
  // and the active segment starts where the chain ends.
  for (size_t i = 0; i < state.sealed.size(); ++i) {
    const WalSegmentInfo& info = state.sealed[i];
    if (i > 0) EXPECT_EQ(info.start, state.sealed[i - 1].end);
    std::string data;
    ASSERT_TRUE(primary.env
                    .ReadFile(std::string(kPrimaryDir) + "/" +
                                  log_format::WalFileName(info.start),
                              &data)
                    .ok());
    EXPECT_EQ(data.size(), info.bytes);
  }
  EXPECT_EQ(state.active_start, state.sealed.back().end);

  // Rolling never loses records: full recovery sees every row.
  Database recovered;
  ASSERT_TRUE(recovered.Recover(kPrimaryDir, &primary.env).ok());
  EXPECT_EQ(LiveIds(&recovered).size(), 30u);

  // And the manifest chains across a checkpoint seal too.
  ASSERT_TRUE(primary.db.CheckpointNow().ok());
  const WalShipState after = primary.db.durability()->ShipState();
  for (size_t i = 1; i < after.sealed.size(); ++i) {
    EXPECT_EQ(after.sealed[i].start, after.sealed[i - 1].end);
  }
}

TEST(ReplReplicaTest, ShipsContinuouslyAndServesReadsReadOnly) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/256, /*wal_retain_segments=*/100);
  for (int32_t i = 0; i < 10; ++i) ASSERT_GT(AckedInsert(&primary.db, i, i), 0u);

  InMemEnv mirror_env;
  repl::Replica replica(MirrorOptions(primary, &mirror_env));
  ASSERT_TRUE(replica.Start().ok());
  uint64_t last = 0;
  for (int32_t i = 10; i < 20; ++i) {
    last = AckedInsert(&primary.db, i, i);
    ASSERT_GT(last, 0u);
  }
  ASSERT_TRUE(replica.WaitForLsn(last, milliseconds(10000)).ok());
  EXPECT_EQ(LiveIds(replica.db()).size(), 20u);
  EXPECT_TRUE(replica.db()->read_only());

  // SELECT through the normal query service works; every write is refused
  // with the typed read-only code.
  QueryService service(replica.db());
  Session* session = service.OpenSession();
  SelectSpec select;
  select.table = "t";
  OpResult rows = service.Execute(session, select);
  ASSERT_TRUE(rows.status.ok());
  EXPECT_EQ(rows.rows.size(), 20u);

  InsertSpec insert;
  insert.table = "t";
  insert.values = {Value(int32_t{999}), Value(int32_t{999})};
  OpResult rejected = service.Execute(session, insert);
  EXPECT_EQ(rejected.status.code(), StatusCode::kReadOnly);
  EXPECT_EQ(LiveIds(replica.db()).size(), 20u);

  // The shell refuses DML the same way and reports replication state.
  CommandShell shell(replica.db());
  shell.set_replica(&replica);
  const std::string err = shell.Execute("INSERT INTO t VALUES (999, 999);");
  EXPECT_NE(err.find("READ_ONLY"), std::string::npos) << err;
  const std::string status = shell.Execute("STATUS;");
  EXPECT_NE(status.find("role: replica"), std::string::npos) << status;
  EXPECT_NE(status.find("repl_applied_lsn:"), std::string::npos) << status;

  // The primary's STATUS roster shows the connected replica and its ack.
  EXPECT_EQ(primary.shipper->connected_replicas(), 1u);
}

TEST(ReplReplicaTest, RestartResumesFromMirrorAndRefetchesTornTail) {
  // A large segment size keeps everything in one active (unsealed)
  // segment, so the torn tail below is crash residue, not a seal breach.
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/1 << 20, /*wal_retain_segments=*/100);
  InMemEnv mirror_env;
  uint64_t last = 0;
  {
    repl::Replica replica(MirrorOptions(primary, &mirror_env));
    ASSERT_TRUE(replica.Start().ok());
    for (int32_t i = 0; i < 12; ++i) {
      last = AckedInsert(&primary.db, i, i);
      ASSERT_GT(last, 0u);
    }
    ASSERT_TRUE(replica.WaitForLsn(last, milliseconds(10000)).ok());
  }  // replica stops; mirror dir stays behind

  // Tear the tail of the active mirror segment, as a replica crash
  // mid-append would: the restart must truncate to the clean prefix and
  // re-request the rest rather than apply a damaged frame.
  std::vector<std::string> names;
  ASSERT_TRUE(mirror_env.ListDir(kMirrorDir, &names).ok());
  std::string active;
  uint64_t best = 0, lsn = 0;
  for (const std::string& name : names) {
    if (log_format::ParseWalFileName(name, &lsn) && lsn >= best) {
      best = lsn;
      active = name;
    }
  }
  ASSERT_FALSE(active.empty());
  const std::string path = std::string(kMirrorDir) + "/" + active;
  std::string data;
  ASSERT_TRUE(mirror_env.ReadFile(path, &data).ok());
  ASSERT_GT(data.size(), 3u);
  data.resize(data.size() - 3);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(mirror_env.NewWritableFile(path, true, &f).ok());
  ASSERT_TRUE(f->Append(data).ok());
  ASSERT_TRUE(f->Sync().ok());
  f.reset();

  repl::Replica replica(MirrorOptions(primary, &mirror_env));
  ASSERT_TRUE(replica.Start().ok());
  ASSERT_TRUE(replica.WaitForLsn(last, milliseconds(10000)).ok());
  EXPECT_EQ(LiveIds(replica.db()).size(), 12u);
  EXPECT_GE(
      replica.db()->metrics().GetCounter("mmdb_repl_refetches_total")->Value(),
      1u);
  EXPECT_TRUE(replica.health().ok());
}

TEST(ReplReplicaTest, CorruptSealedMirrorSegmentFailsBootstrapLoudly) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/128, /*wal_retain_segments=*/100);
  InMemEnv mirror_env;
  uint64_t last = 0;
  {
    repl::Replica replica(MirrorOptions(primary, &mirror_env));
    ASSERT_TRUE(replica.Start().ok());
    for (int32_t i = 0; i < 20; ++i) {
      last = AckedInsert(&primary.db, i, i);
      ASSERT_GT(last, 0u);
    }
    ASSERT_TRUE(replica.WaitForLsn(last, milliseconds(10000)).ok());
  }

  // Flip one byte inside a *sealed* mirror segment.  Recovery of the
  // mirror must fail with a typed corruption pointing at resync — never a
  // silent partial bootstrap.
  WalManifest manifest;
  ASSERT_TRUE(WalManifest::Load(&mirror_env, kMirrorDir, &manifest).ok());
  ASSERT_FALSE(manifest.empty()) << "expected sealed segments in the mirror";
  const std::string path =
      std::string(kMirrorDir) + "/" +
      log_format::WalFileName(manifest.segments().front().start);
  std::string data;
  ASSERT_TRUE(mirror_env.ReadFile(path, &data).ok());
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x10);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(mirror_env.NewWritableFile(path, true, &f).ok());
  ASSERT_TRUE(f->Append(data).ok());
  f.reset();

  repl::Replica replica(MirrorOptions(primary, &mirror_env));
  Status s = replica.Start();
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_NE(s.message().find("resync"), std::string::npos) << s.ToString();
}

TEST(ReplReplicaTest, PersistentlyCorruptShippedSegmentHaltsTyped) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/128, /*wal_retain_segments=*/100);
  for (int32_t i = 0; i < 20; ++i) ASSERT_GT(AckedInsert(&primary.db, i, i), 0u);
  const WalShipState state = primary.db.durability()->ShipState();
  ASSERT_FALSE(state.sealed.empty());

  // Corrupt the primary's own copy of a sealed segment (silent disk damage
  // on the primary): every refetch ships the same bad bytes, so the
  // replica must stop at the torn frame with a typed error after bounded
  // retries — and never apply anything past it.
  const WalSegmentInfo& victim = state.sealed.front();
  const std::string path = std::string(kPrimaryDir) + "/" +
                           log_format::WalFileName(victim.start);
  std::string data;
  ASSERT_TRUE(primary.env.ReadFile(path, &data).ok());
  data[data.size() - 2] = static_cast<char>(data[data.size() - 2] ^ 0x4);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(primary.env.NewWritableFile(path, true, &f).ok());
  ASSERT_TRUE(f->Append(data).ok());
  f.reset();

  InMemEnv mirror_env;
  repl::Replica replica(MirrorOptions(primary, &mirror_env));
  ASSERT_TRUE(replica.Start().ok());
  Status wait = replica.WaitForLsn(victim.end, milliseconds(10000));
  EXPECT_EQ(wait.code(), StatusCode::kCorruption) << wait.ToString();
  EXPECT_EQ(replica.health().code(), StatusCode::kCorruption);
  EXPECT_NE(replica.health().message().find("corrupt"), std::string::npos);
  // It re-requested the damaged range before giving up...
  EXPECT_GE(
      replica.db()->metrics().GetCounter("mmdb_repl_refetches_total")->Value(),
      1u);
  // ...and applied nothing at or past the torn frame.
  EXPECT_LT(replica.applied_lsn(), victim.end);
}

TEST(ReplShipperTest, RetentionNeverDeletesSegmentsASlowReplicaNeeds) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/128, /*wal_retain_segments=*/1);
  uint64_t early = 0, last = 0;
  for (int32_t i = 0; i < 30; ++i) {
    last = AckedInsert(&primary.db, i, i);
    ASSERT_GT(last, 0u);
    if (i == 2) early = last;
  }
  const WalShipState before = primary.db.durability()->ShipState();
  ASSERT_GE(before.sealed.size(), 3u);

  // A slow replica acked only `early`: a checkpoint's GC must keep every
  // sealed segment covering LSNs past it, regardless of the retain count.
  primary.shipper->RecordAck(7, early);
  ASSERT_TRUE(primary.db.CheckpointNow().ok());
  const WalShipState pinned = primary.db.durability()->ShipState();
  ASSERT_FALSE(pinned.sealed.empty());
  EXPECT_LE(pinned.sealed.front().start, early);
  for (const WalSegmentInfo& info : pinned.sealed) {
    EXPECT_TRUE(primary.env.FileExists(std::string(kPrimaryDir) + "/" +
                                       log_format::WalFileName(info.start)))
        << "wal-" << info.start << " vanished while a replica needed it";
  }

  // Once the replica catches up, the next checkpoint GC reclaims history
  // down to the retain count.
  primary.shipper->RecordAck(7, last);
  ASSERT_TRUE(AckedInsert(&primary.db, 100, 100) > 0u);
  ASSERT_TRUE(primary.db.CheckpointNow().ok());
  const WalShipState after = primary.db.durability()->ShipState();
  EXPECT_LE(after.sealed.size(), 2u);  // retain count + the newest seal
  EXPECT_GT(after.sealed.empty() ? last : after.sealed.front().start, early);
}

TEST(ReplPitrTest, RecoverUptoReproducesExactHistoricalState) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/128, /*wal_retain_segments=*/1000);
  uint64_t as_of = 0, last = 0;
  for (int32_t i = 0; i < 8; ++i) {
    as_of = AckedInsert(&primary.db, i, i);
    ASSERT_GT(as_of, 0u);
  }
  // History continues past the target: more rows, a delete, a checkpoint.
  for (int32_t i = 8; i < 16; ++i) {
    last = AckedInsert(&primary.db, i, i);
    ASSERT_GT(last, 0u);
  }
  {
    std::unique_ptr<Transaction> txn = primary.db.Begin();
    Relation* rel = primary.db.GetTable("t");
    const size_t off = rel->schema().offset(0);
    std::vector<TupleRef> victims;
    for (const auto& p : rel->partitions()) {
      p->ForEachLive([&](TupleRef t) {
        if (tuple::GetInt32(t, off) == 3) victims.push_back(t);
      });
    }
    for (TupleRef t : victims) ASSERT_TRUE(txn->Delete("t", t).ok());
    ASSERT_TRUE(txn->Commit().ok());
    ASSERT_TRUE(primary.db.WaitDurable(txn->commit_lsn()).ok());
  }
  ASSERT_TRUE(primary.db.CheckpointNow().ok());

  // Recovery bounded at `as_of` sees exactly ids 0..7 — id 3 still alive,
  // nothing from the future.
  Database at_target;
  ASSERT_TRUE(
      at_target.Recover(kPrimaryDir, &primary.env, nullptr, as_of).ok());
  std::set<int32_t> expect;
  for (int32_t i = 0; i < 8; ++i) expect.insert(i);
  EXPECT_EQ(LiveIds(&at_target), expect);

  // Unbounded recovery sees the present: 0..15 plus 100-free, minus id 3.
  Database now;
  ASSERT_TRUE(now.Recover(kPrimaryDir, &primary.env).ok());
  std::set<int32_t> current;
  for (int32_t i = 0; i < 16; ++i) {
    if (i != 3) current.insert(i);
  }
  EXPECT_EQ(LiveIds(&now), current);

  // A replica's mirror is a real durability dir: the same PITR bound works
  // against it unchanged.
  InMemEnv mirror_env;
  repl::Replica replica(MirrorOptions(primary, &mirror_env));
  ASSERT_TRUE(replica.Start().ok());
  const uint64_t final_lsn = AckedInsert(&primary.db, 200, 200);
  ASSERT_GT(final_lsn, 0u);
  ASSERT_TRUE(replica.WaitForLsn(final_lsn, milliseconds(10000)).ok());
  replica.Stop();
  Database from_mirror;
  Status s = from_mirror.Recover(kMirrorDir, &mirror_env, nullptr, final_lsn);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::set<int32_t> mirrored = current;
  mirrored.insert(200);
  EXPECT_EQ(LiveIds(&from_mirror), mirrored);
}

TEST(ReplPromoteTest, PromotedReplicaAcceptsWritesAndStaysDurable) {
  Primary primary;
  primary.Start(/*wal_segment_bytes=*/256, /*wal_retain_segments=*/100);
  uint64_t last = 0;
  for (int32_t i = 0; i < 10; ++i) {
    last = AckedInsert(&primary.db, i, i);
    ASSERT_GT(last, 0u);
  }

  InMemEnv mirror_env;
  repl::Replica replica(MirrorOptions(primary, &mirror_env));
  ASSERT_TRUE(replica.Start().ok());
  ASSERT_TRUE(replica.WaitForLsn(last, milliseconds(10000)).ok());

  // PROMOTE through the shell seam, as an operator would.
  CommandShell shell(replica.db());
  shell.set_replica(&replica);
  const std::string out = shell.Execute("PROMOTE;");
  EXPECT_EQ(out, "ok: promoted to primary") << out;
  EXPECT_TRUE(replica.promoted());
  EXPECT_FALSE(replica.db()->read_only());
  // Idempotent: a second PROMOTE is a no-op success.
  EXPECT_EQ(shell.Execute("PROMOTE;"), "ok: promoted to primary");

  // Writes are accepted, durable, and LSNs continue past the replayed
  // history (no collision with shipped records).
  const uint64_t promoted_lsn = AckedInsert(replica.db(), 500, 500);
  ASSERT_GT(promoted_lsn, last);
  EXPECT_EQ(LiveIds(replica.db()).size(), 11u);

  // The mirror dir is now a first-class primary dir: recovery sees the
  // pre-promotion history and the new writes.
  replica.db()->DisableDurability();
  Database recovered;
  ASSERT_TRUE(recovered.Recover(kMirrorDir, &mirror_env).ok());
  std::set<int32_t> ids = LiveIds(&recovered);
  EXPECT_EQ(ids.size(), 11u);
  EXPECT_EQ(ids.count(500), 1u);
}

}  // namespace
}  // namespace mmdb
