// Failover torture drill.  The parent re-executes this binary as
// `--repl-torture-child <dir> <port_file> <base> <threads>`: a primary
// process running concurrent grouped transactions against a sync-durable
// database, serving the binary wire protocol with log shipping enabled,
// and recording every attempted/acknowledged group (with its commit LSN)
// in an fsync'd oracle file.
//
// The parent starts an in-process read replica of that child, SIGKILLs the
// primary mid-load at a randomized point, promotes the replica, and checks
// the failover contract:
//
//   1. every group acknowledged at or below the replica's final applied
//      LSN is fully present on the promoted replica (async shipping can
//      lose only the un-shipped suffix, never something it applied);
//   2. groups are atomic on the replica — never partially present;
//   3. every row on the replica belongs to a group the primary attempted
//      (no invented timeline);
//   4. the dead primary's directory still recovers every acked group —
//      the replica's lag window is recoverable, not lost;
//   5. the promoted replica accepts new durable writes, and its mirror
//      directory recovers them.
//
// Knobs: MMDB_REPL_TORTURE_ITERS (default 6), MMDB_REPL_TORTURE_SEED
// (default 42).  CI runs a fixed seed matrix.

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/database.h"
#include "src/core/durability.h"
#include "src/net/server.h"
#include "src/repl/replica.h"
#include "src/repl/shipper.h"
#include "src/server/query_service.h"
#include "src/storage/tuple.h"
#include "src/util/env.h"

namespace {
const char* g_self = nullptr;  // argv[0]: the binary to re-exec as a child
}

namespace mmdb {
namespace {

constexpr int32_t kGroupRows = 3;
constexpr int32_t kThreadStride = 999999;

void MakeTortureTable(Database* db) {
  Relation::Options options;
  options.partition.slot_capacity = 64;
  db->CreateTable("t", {{"id", Type::kInt32}, {"v", Type::kInt32}}, options);
}

// ---- Child (the primary that will be killed) -------------------------------

void OracleLine(int fd, char tag, int32_t group_base, uint64_t lsn) {
  char buf[96];
  int n = snprintf(buf, sizeof(buf), "%c %d %llu\n", tag, group_base,
                   static_cast<unsigned long long>(lsn));
  if (write(fd, buf, static_cast<size_t>(n)) != n || fsync(fd) != 0) {
    _exit(3);
  }
}

int ReplTortureChild(const std::string& dir, const std::string& port_file,
                     int32_t base, int threads) {
  auto db = std::make_unique<Database>();
  MakeTortureTable(db.get());
  DurabilityOptions options;
  options.mode = DurabilityMode::kSync;
  options.dir = dir;
  options.flush_interval = std::chrono::milliseconds(1);
  // Small segments so kills race seals and segment shipping; a large
  // retain count so the drill never depends on the ack-floor timing
  // (retention-vs-slow-replica has its own deterministic test).
  options.wal_segment_bytes = 16 << 10;
  options.wal_retain_segments = 1000;
  if (!db->EnableDurability(std::move(options)).ok()) _exit(5);

  repl::Shipper shipper(db.get());
  QueryService service(db.get());
  net::ServerOptions server_options;
  server_options.port = 0;
  net::Server server(&service, server_options);
  server.set_repl_handler(
      [&shipper](const std::string& r) { return shipper.HandleRequest(r); });
  if (!server.Start().ok()) _exit(6);

  // Publish the ephemeral port crash-atomically; the parent waits on it.
  {
    const std::string tmp = port_file + ".tmp";
    FILE* f = fopen(tmp.c_str(), "w");
    if (f == nullptr) _exit(6);
    fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    fflush(f);
    fsync(fileno(f));
    fclose(f);
    if (rename(tmp.c_str(), port_file.c_str()) != 0) _exit(6);
  }

  int oracle = open((dir + "/oracle.txt").c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (oracle < 0) _exit(6);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const int32_t block = base + t * kThreadStride;
      for (int32_t g = 0;; ++g) {
        const int32_t group_base = block + g * kGroupRows;
        OracleLine(oracle, 't', group_base, 0);
        std::unique_ptr<Transaction> txn;
        for (;;) {
          txn = db->Begin();
          bool ok = true;
          for (int32_t j = 0; j < kGroupRows; ++j) {
            ok = ok &&
                 txn->Insert("t", {Value(group_base + j), Value(group_base)})
                     .ok();
          }
          if (ok) {
            Status cs = txn->Commit();
            if (cs.ok()) break;
            // Commit rolls the transaction back fully on a deadlock-victim
            // abort; anything else is a real durability failure.
            if (cs.code() != StatusCode::kAborted) _exit(8);
            continue;
          }
          // Lock wait timeout between the writer threads: abort and retry
          // the whole group — 't' is already logged, so the oracle contract
          // (all-or-nothing per group) still holds.
          txn->Abort();
        }
        if (!db->WaitDurable(txn->commit_lsn()).ok()) _exit(9);
        OracleLine(oracle, 'a', group_base, txn->commit_lsn());
        // Kills race checkpoints + seals too.
        if (t == 0 && g % 24 == 23 && !db->CheckpointNow().ok()) _exit(10);
      }
    });
  }
  for (auto& w : workers) w.join();  // unreachable: SIGKILL ends the child
  return 0;
}

// ---- Parent ----------------------------------------------------------------

struct Oracle {
  std::set<int32_t> tried;
  std::map<int32_t, uint64_t> acked;  // group base -> commit lsn
};

Oracle ReadOracle(const std::string& path) {
  Oracle o;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    char tag;
    int32_t group_base;
    uint64_t lsn;
    if (!(ls >> tag >> group_base >> lsn)) continue;  // torn final line
    if (tag == 't') o.tried.insert(group_base);
    if (tag == 'a') o.acked[group_base] = lsn;
  }
  return o;
}

std::map<int32_t, int> PresentGroups(Database* db) {
  std::map<int32_t, int> rows_per_group;
  Relation* rel = db->GetTable("t");
  if (rel == nullptr) return rows_per_group;
  const size_t off = rel->schema().offset(0);
  for (const auto& p : rel->partitions()) {
    p->ForEachLive([&](TupleRef t) {
      int32_t id = tuple::GetInt32(t, off);
      ++rows_per_group[id - id % kGroupRows];
    });
  }
  return rows_per_group;
}

uint16_t WaitForPort(const std::string& port_file, pid_t child) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(port_file);
    unsigned port = 0;
    if (in >> port && port != 0) return static_cast<uint16_t>(port);
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) return 0;  // died early
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

void FailoverDrill(const std::string& root, uint64_t delay_us,
                   const std::string& what, size_t* acked_out) {
  *acked_out = 0;
  const std::string primary_dir = root + "/primary";
  const std::string mirror_dir = root + "/mirror";
  const std::string port_file = root + "/port.txt";
  std::filesystem::create_directories(primary_dir);

  pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    execl(g_self, g_self, "--repl-torture-child", primary_dir.c_str(),
          port_file.c_str(), "0", "2", static_cast<char*>(nullptr));
    _exit(127);
  }
  const uint16_t port = WaitForPort(port_file, pid);
  ASSERT_NE(port, 0) << what << ": primary never published its port";

  repl::ReplicaOptions options;
  options.primary_port = port;
  options.dir = mirror_dir;
  options.poll_interval = std::chrono::milliseconds(2);
  options.reconnect_backoff = std::chrono::milliseconds(10);
  repl::Replica replica(options);
  Status s = replica.Start();
  ASSERT_TRUE(s.ok()) << what << ": replica start: " << s.ToString();

  // Load runs with the replica attached; then the primary dies hard.
  std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << what << ": child died with status " << status;
  // Let the apply thread drain whatever it already fetched before the
  // connection broke (promotion would cut it off mid-drain otherwise).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  ASSERT_TRUE(replica.health().ok())
      << what << ": replica unhealthy: " << replica.health().ToString();
  s = replica.Promote();
  ASSERT_TRUE(s.ok()) << what << ": promote: " << s.ToString();
  const uint64_t applied = replica.applied_lsn();

  Oracle oracle = ReadOracle(primary_dir + "/oracle.txt");
  std::map<int32_t, int> on_replica = PresentGroups(replica.db());

  // (1) Nothing the replica applied is lost; (2) atomic; (3) no invented
  // rows.
  for (const auto& [g, lsn] : oracle.acked) {
    if (lsn > applied) continue;  // in the lag window: see primary check
    EXPECT_EQ(on_replica.count(g) != 0 ? on_replica[g] : 0, kGroupRows)
        << what << ": applied group " << g << " (lsn " << lsn
        << " <= " << applied << ") lost or partial after promotion";
  }
  for (const auto& [g, n] : on_replica) {
    EXPECT_EQ(n, kGroupRows) << what << ": group " << g << " is partial";
    EXPECT_EQ(oracle.tried.count(g), 1u)
        << what << ": group " << g << " present but never attempted";
  }

  // (4) The lag window is recoverable from the dead primary's directory.
  {
    Database from_primary;
    s = from_primary.Recover(primary_dir, Env::Posix());
    ASSERT_TRUE(s.ok()) << what << ": primary recovery: " << s.ToString();
    std::map<int32_t, int> on_primary = PresentGroups(&from_primary);
    for (const auto& [g, lsn] : oracle.acked) {
      EXPECT_EQ(on_primary.count(g) != 0 ? on_primary[g] : 0, kGroupRows)
          << what << ": acked group " << g << " lost from the primary dir";
    }
    // The replica never holds a group the primary's history does not.
    for (const auto& [g, n] : on_replica) {
      EXPECT_EQ(on_primary.count(g), 1u)
          << what << ": replica invented group " << g;
    }
  }

  // (5) The promoted replica is a live primary: new writes are durable in
  // the mirror.
  {
    std::unique_ptr<Transaction> txn = replica.db()->Begin();
    const int32_t promo_base = 50 * kThreadStride;
    for (int32_t j = 0; j < kGroupRows; ++j) {
      ASSERT_TRUE(
          txn->Insert("t", {Value(promo_base + j), Value(promo_base)}).ok())
          << what;
    }
    ASSERT_TRUE(txn->Commit().ok()) << what;
    ASSERT_TRUE(replica.db()->WaitDurable(txn->commit_lsn()).ok()) << what;

    ASSERT_TRUE(replica.db()->DisableDurability().ok()) << what;
    Database from_mirror;
    s = from_mirror.Recover(mirror_dir, Env::Posix());
    ASSERT_TRUE(s.ok()) << what << ": mirror recovery: " << s.ToString();
    std::map<int32_t, int> recovered = PresentGroups(&from_mirror);
    EXPECT_EQ(recovered.count(promo_base) ? recovered[promo_base] : 0,
              kGroupRows)
        << what << ": post-promotion write lost from the mirror";
    for (const auto& [g, n] : on_replica) {
      EXPECT_EQ(recovered.count(g), 1u)
          << what << ": group " << g << " missing from the mirror";
    }
  }

  *acked_out = oracle.acked.size();
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = getenv(name);
  return (v != nullptr && *v != '\0') ? strtoull(v, nullptr, 10) : fallback;
}

TEST(ReplTortureTest, KillPrimaryPromoteReplicaNeverLosesAppliedGroups) {
  const uint64_t iters = EnvOr("MMDB_REPL_TORTURE_ITERS", 6);
  const uint64_t seed = EnvOr("MMDB_REPL_TORTURE_SEED", 42);
  std::mt19937_64 rng(seed);
  std::string root = std::string(::testing::TempDir()) + "mmdb_replXXXXXX";
  ASSERT_NE(mkdtemp(root.data()), nullptr);

  size_t total_acked = 0;
  for (uint64_t i = 0; i < iters; ++i) {
    const std::string dir = root + "/it" + std::to_string(i);
    // Kill points range from "replica barely attached" to "deep in
    // steady-state shipping across seals and checkpoints".
    const uint64_t delay_us = 10000 + rng() % 400000;
    const std::string what =
        "seed=" + std::to_string(seed) + " iter=" + std::to_string(i) +
        " delay_us=" + std::to_string(delay_us);
    size_t acked = 0;
    FailoverDrill(dir, delay_us, what, &acked);
    if (::testing::Test::HasFatalFailure()) break;
    total_acked += acked;
    std::filesystem::remove_all(dir);
  }
  EXPECT_GT(total_acked, 0u) << "no iteration ever acknowledged a write";
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace mmdb

int main(int argc, char** argv) {
  if (argc >= 6 && strcmp(argv[1], "--repl-torture-child") == 0) {
    return mmdb::ReplTortureChild(argv[2], argv[3], atoi(argv[4]),
                                  atoi(argv[5]));
  }
  g_self = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
