#include <gtest/gtest.h>

#include "src/storage/schema.h"

namespace mmdb {
namespace {

TEST(SchemaTest, OffsetsAndSize) {
  Schema s({{"a", Type::kInt32},
            {"b", Type::kInt64},
            {"c", Type::kInt32},
            {"d", Type::kString}});
  EXPECT_EQ(s.field_count(), 4u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);  // int64 aligned up from 4
  EXPECT_EQ(s.offset(2), 16u);
  EXPECT_EQ(s.offset(3), 24u);  // string pointer aligned to 8
  EXPECT_EQ(s.tuple_bytes(), 32u);
}

TEST(SchemaTest, PackedInt32Pair) {
  Schema s({{"a", Type::kInt32}, {"b", Type::kInt32}});
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.tuple_bytes(), 8u);
}

TEST(SchemaTest, EmptySchemaHasNonzeroStride) {
  Schema s;
  EXPECT_EQ(s.field_count(), 0u);
  EXPECT_GE(s.tuple_bytes(), 8u);
}

TEST(SchemaTest, FieldIndexLookup) {
  Schema s({{"name", Type::kString}, {"id", Type::kInt32}});
  EXPECT_EQ(s.FieldIndex("name"), 0u);
  EXPECT_EQ(s.FieldIndex("id"), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").has_value());
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", Type::kInt32}});
  Schema b({{"x", Type::kInt32}});
  Schema c({{"x", Type::kInt64}});
  Schema d({{"y", Type::kInt32}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(SchemaTest, ToStringListsFields) {
  Schema s({{"name", Type::kString}, {"id", Type::kInt32}});
  EXPECT_EQ(s.ToString(), "name:string, id:int32");
}

TEST(SchemaTest, PointerFieldLayout) {
  Schema s({{"fk", Type::kPointer}, {"v", Type::kInt32}});
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.tuple_bytes(), 16u);
}

}  // namespace
}  // namespace mmdb
