#include <gtest/gtest.h>

#include "src/exec/select.h"
#include "src/util/counters.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

using testutil::AttachKeyIndex;

std::vector<int32_t> Keys(const TempList& list, const Relation& rel) {
  std::vector<int32_t> out;
  for (size_t r = 0; r < list.size(); ++r) {
    out.push_back(testutil::KeyOf(list.At(r, 0), rel));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PredicateTest, ConditionOps) {
  auto rel = testutil::IntRelation("r", {10});
  TupleRef t = nullptr;
  rel->ForEachTuple([&](TupleRef u) { t = u; });
  const Schema& s = rel->schema();
  auto matches = [&](CompareOp op, int32_t v) {
    Condition c{0, op, Value(v)};
    return c.Matches(t, s);
  };
  EXPECT_TRUE(matches(CompareOp::kEq, 10));
  EXPECT_FALSE(matches(CompareOp::kEq, 11));
  EXPECT_TRUE(matches(CompareOp::kNe, 11));
  EXPECT_TRUE(matches(CompareOp::kLt, 11));
  EXPECT_FALSE(matches(CompareOp::kLt, 10));
  EXPECT_TRUE(matches(CompareOp::kLe, 10));
  EXPECT_TRUE(matches(CompareOp::kGt, 9));
  EXPECT_TRUE(matches(CompareOp::kGe, 10));
  EXPECT_FALSE(matches(CompareOp::kGe, 11));
}

TEST(PredicateTest, ConjunctionAndLookups) {
  Predicate p;
  p.Add(0, CompareOp::kGe, Value(10)).Add(1, CompareOp::kEq, Value(3));
  EXPECT_EQ(p.conditions().size(), 2u);
  EXPECT_TRUE(p.EqualityOn(1).has_value());
  EXPECT_FALSE(p.EqualityOn(0).has_value());
  EXPECT_TRUE(p.SargableOn(0).has_value());
  Predicate ne;
  ne.Add(0, CompareOp::kNe, Value(1));
  EXPECT_FALSE(ne.SargableOn(0).has_value());
}

TEST(PredicateTest, ToStringRendering) {
  auto rel = testutil::IntRelation("r", {});
  Predicate p;
  p.Add(0, CompareOp::kGt, Value(65));
  EXPECT_EQ(p.ToString(rel->schema()), "key > 65");
  EXPECT_EQ(Predicate().ToString(rel->schema()), "true");
}

TEST(SelectTest, SequentialScanFiltersAll) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kArray);  // scan vehicle
  Predicate p;
  p.Add(0, CompareOp::kLt, Value(10));
  TempList out = SelectScan(*rel, p);
  EXPECT_EQ(Keys(out, *rel),
            (std::vector<int32_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SelectTest, EmptyPredicateSelectsEverything) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(50));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  TempList out = Select(*rel, Predicate());
  EXPECT_EQ(out.size(), 50u);
}

TEST(SelectTest, HashPathChosenForEquality) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  AttachKeyIndex(rel.get(), IndexKind::kModifiedLinearHash);
  Predicate p;
  p.Add(0, CompareOp::kEq, Value(42));
  AccessPath path;
  TempList out = Select(*rel, p, &path);
  EXPECT_EQ(path, AccessPath::kHashLookup);
  EXPECT_EQ(Keys(out, *rel), (std::vector<int32_t>{42}));
}

TEST(SelectTest, TreePathChosenForRange) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  AttachKeyIndex(rel.get(), IndexKind::kModifiedLinearHash);
  Predicate p;
  p.Add(0, CompareOp::kGe, Value(95));
  AccessPath path;
  TempList out = Select(*rel, p, &path);
  EXPECT_EQ(path, AccessPath::kTreeRange);
  EXPECT_EQ(Keys(out, *rel), (std::vector<int32_t>{95, 96, 97, 98, 99}));
}

TEST(SelectTest, TreeLookupWhenOnlyOrderedIndex) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  Predicate p;
  p.Add(0, CompareOp::kEq, Value(7));
  AccessPath path;
  TempList out = Select(*rel, p, &path);
  EXPECT_EQ(path, AccessPath::kTreeLookup);
  EXPECT_EQ(Keys(out, *rel), (std::vector<int32_t>{7}));
}

TEST(SelectTest, FallsBackToScanOnUnindexedField) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  Predicate p;
  p.Add(1, CompareOp::kLt, Value(3));  // "seq" has no index
  AccessPath path;
  TempList out = Select(*rel, p, &path);
  EXPECT_EQ(path, AccessPath::kSequentialScan);
  EXPECT_EQ(out.size(), 3u);
}

TEST(SelectTest, ResidualConditionsApplied) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(100));
  AttachKeyIndex(rel.get(), IndexKind::kTTree);
  Predicate p;
  // Range on indexed key + residual on seq.
  p.Add(0, CompareOp::kLt, Value(50)).Add(1, CompareOp::kLt, Value(1000));
  AccessPath path;
  TempList out = Select(*rel, p, &path);
  EXPECT_EQ(path, AccessPath::kTreeRange);
  EXPECT_EQ(out.size(), 50u);

  Predicate strict;
  strict.Add(0, CompareOp::kLt, Value(50)).Add(0, CompareOp::kGe, Value(40));
  EXPECT_EQ(Select(*rel, strict).size(), 10u);
}

TEST(SelectTest, HashIndexEqualityWithDuplicates) {
  auto rel = testutil::IntRelation("r", {5, 5, 5, 6, 7});
  AttachKeyIndex(rel.get(), IndexKind::kChainedBucketHash);
  Predicate p;
  p.Add(0, CompareOp::kEq, Value(5));
  AccessPath path;
  TempList out = Select(*rel, p, &path);
  EXPECT_EQ(path, AccessPath::kHashLookup);
  EXPECT_EQ(out.size(), 3u);
}

TEST(SelectTest, TwoSidedRangeScansOnlyTheWindow) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(10000));
  auto* tree = static_cast<OrderedIndex*>(
      AttachKeyIndex(rel.get(), IndexKind::kTTree));
  Predicate window;
  window.Add(0, CompareOp::kGe, Value(5000)).Add(0, CompareOp::kLt,
                                                 Value(5010));
  counters::Reset();
  TempList out = SelectTree(*rel, window, 0, *tree);
  EXPECT_EQ(out.size(), 10u);
#if defined(MMDB_COUNTERS)
  // A combined [5000, 5010) window touches ~10 items plus the descent —
  // nowhere near the 5000 a one-sided scan-to-end would visit.
  EXPECT_LT(counters::Snapshot().comparisons, 200u);
#endif
  // Contradictory bounds yield an empty result, not a full scan.
  Predicate empty_window;
  empty_window.Add(0, CompareOp::kGt, Value(9)).Add(0, CompareOp::kLt,
                                                    Value(5));
  EXPECT_EQ(SelectTree(*rel, empty_window, 0, *tree).size(), 0u);
}

TEST(SelectTest, AllSelectionPathsAgree) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(500));
  auto* tree = AttachKeyIndex(rel.get(), IndexKind::kTTree);
  auto* hash = AttachKeyIndex(rel.get(), IndexKind::kExtendibleHash);
  Predicate p;
  p.Add(0, CompareOp::kEq, Value(123));
  TempList via_scan = SelectScan(*rel, p);
  TempList via_tree =
      SelectTree(*rel, p, 0, *static_cast<OrderedIndex*>(tree));
  TempList via_hash = SelectHash(*rel, p, 0, *static_cast<HashIndex*>(hash));
  EXPECT_EQ(Keys(via_scan, *rel), Keys(via_tree, *rel));
  EXPECT_EQ(Keys(via_scan, *rel), Keys(via_hash, *rel));
}

}  // namespace
}  // namespace mmdb
