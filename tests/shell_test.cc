// CommandShell: the textual front end over the Database facade.

#include <gtest/gtest.h>

#include "src/core/database.h"
#include "src/core/shell.h"

namespace mmdb {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  ShellTest() : shell_(&db_) {}

  std::string Run(const std::string& statement) {
    return shell_.Execute(statement);
  }

  Database db_;
  CommandShell shell_;
};

TEST_F(ShellTest, CreateTableAndDescribe) {
  EXPECT_EQ(Run("CREATE TABLE emp (name STRING, id INT, age INT)"),
            "ok: table emp (3 fields)");
  std::string desc = Run("DESCRIBE emp");
  EXPECT_NE(desc.find("name:string, id:int32, age:int32"), std::string::npos);
  EXPECT_NE(desc.find("T Tree"), std::string::npos);  // default primary
  EXPECT_NE(Run("CREATE TABLE emp (x INT)").find("error"), std::string::npos);
}

TEST_F(ShellTest, CreateIndexVariants) {
  Run("CREATE TABLE t (a INT, b STRING)");
  EXPECT_EQ(Run("CREATE INDEX ON t (b) USING MLHASH").rfind("ok:", 0), 0u);
  EXPECT_EQ(Run("CREATE INDEX ON t (a) USING BTREE NODESIZE 8 UNIQUE")
                .rfind("ok:", 0),
            0u);
  EXPECT_NE(Run("CREATE INDEX ON t (zz) USING TTREE").find("error"),
            std::string::npos);
  EXPECT_NE(Run("CREATE INDEX ON t (a) USING WIBBLE").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, InsertSelectRoundTrip) {
  Run("CREATE TABLE t (name STRING, n INT)");
  EXPECT_EQ(Run("INSERT INTO t VALUES ('alpha', 1)"), "ok: 1 row");
  EXPECT_EQ(Run("INSERT INTO t VALUES ('beta', 2)"), "ok: 1 row");
  std::string out = Run("SELECT t.name, t.n FROM t WHERE n >= 2");
  EXPECT_NE(out.find("(\"beta\", 2)"), std::string::npos);
  EXPECT_NE(out.find("(1 rows)"), std::string::npos);
  // SELECT * = all driving-table columns.
  std::string all = Run("SELECT * FROM t");
  EXPECT_NE(all.find("(2 rows)"), std::string::npos);
}

TEST_F(ShellTest, QuotedStringsWithEscapes) {
  Run("CREATE TABLE t (s STRING)");
  EXPECT_EQ(Run("INSERT INTO t VALUES ('it''s fine')"), "ok: 1 row");
  std::string out = Run("SELECT t.s FROM t WHERE s = 'it''s fine'");
  EXPECT_NE(out.find("(1 rows)"), std::string::npos);
}

TEST_F(ShellTest, JoinWithForeignKeyAndPaths) {
  Run("CREATE TABLE dept (name STRING, id INT)");
  Run("CREATE TABLE emp (name STRING, age INT, dept_id POINTER)");
  EXPECT_EQ(Run("FOREIGN KEY emp (dept_id) REFERENCES dept (id)"),
            "ok: foreign key emp.dept_id -> dept.id");
  Run("INSERT INTO dept VALUES ('Toy', 459)");
  Run("INSERT INTO dept VALUES ('Shoe', 409)");
  Run("INSERT INTO emp VALUES ('Dave', 24, 459)");
  Run("INSERT INTO emp VALUES ('Al', 67, 409)");

  // Query 1: FK path column.
  std::string q1 =
      Run("SELECT emp.name, emp.dept_id.name FROM emp WHERE age > 65");
  EXPECT_NE(q1.find("(\"Al\", \"Shoe\")"), std::string::npos);

  // Query 2 shape: join with a joined-side condition.
  std::string q2 = Run(
      "SELECT emp.name FROM emp JOIN dept ON dept_id = id "
      "WHERE dept.name = 'Toy'");
  EXPECT_NE(q2.find("(\"Dave\")"), std::string::npos);
  EXPECT_NE(q2.find("(1 rows)"), std::string::npos);
}

TEST_F(ShellTest, DistinctAndOrdered) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (3)");
  Run("INSERT INTO t VALUES (1)");
  Run("INSERT INTO t VALUES (3)");
  std::string out = Run("SELECT t.x FROM t DISTINCT ORDERED");
  const size_t one = out.find("(1)");
  const size_t three = out.find("(3)");
  ASSERT_NE(one, std::string::npos);
  ASSERT_NE(three, std::string::npos);
  EXPECT_LT(one, three);
  EXPECT_NE(out.find("(2 rows)"), std::string::npos);
}

TEST_F(ShellTest, UpdateAndDelete) {
  Run("CREATE TABLE t (name STRING, n INT)");
  Run("INSERT INTO t VALUES ('a', 1)");
  Run("INSERT INTO t VALUES ('b', 2)");
  Run("INSERT INTO t VALUES ('c', 3)");
  EXPECT_EQ(Run("UPDATE t SET n = 10 WHERE name = 'b'"),
            "ok: 1 rows updated");
  EXPECT_NE(Run("SELECT t.n FROM t WHERE name = 'b'").find("(10)"),
            std::string::npos);
  EXPECT_EQ(Run("DELETE FROM t WHERE n >= 3"), "ok: 2 rows deleted");
  EXPECT_NE(Run("SELECT * FROM t").find("(1 rows)"), std::string::npos);
  EXPECT_EQ(Run("DELETE FROM t"), "ok: 1 rows deleted");
}

TEST_F(ShellTest, ExplainShowsPlanOnly) {
  Run("CREATE TABLE t (x INT)");
  Run("CREATE INDEX ON t (x) USING MLHASH");
  Run("INSERT INTO t VALUES (5)");
  std::string plan = Run("EXPLAIN SELECT t.x FROM t WHERE x = 5");
  EXPECT_EQ(plan.rfind("plan:", 0), 0u);
  EXPECT_NE(plan.find("hash lookup"), std::string::npos);
  EXPECT_EQ(plan.find("(1 rows)"), std::string::npos);
}

TEST_F(ShellTest, CheckpointAndCrash) {
  Run("CREATE TABLE t (x INT)");
  Run("INSERT INTO t VALUES (1)");
  EXPECT_EQ(Run("CHECKPOINT"), "ok: checkpointed");
  Run("INSERT INTO t VALUES (2)");  // unlogged (auto-commit path): lost
  std::string crash = Run("CRASH");
  EXPECT_EQ(crash.rfind("ok: crashed", 0), 0u);
  EXPECT_NE(Run("SELECT * FROM t").find("(1 rows)"), std::string::npos);
}

TEST_F(ShellTest, ScriptExecution) {
  std::string out = shell_.ExecuteScript(
      "CREATE TABLE t (x INT);"
      "INSERT INTO t VALUES (7);"
      "SELECT t.x FROM t;");
  EXPECT_NE(out.find("ok: table t"), std::string::npos);
  EXPECT_NE(out.find("ok: 1 row"), std::string::npos);
  EXPECT_NE(out.find("(7)"), std::string::npos);
  // Semicolons inside strings do not split statements.
  Run("CREATE TABLE s (v STRING)");
  std::string tricky = shell_.ExecuteScript(
      "INSERT INTO s VALUES ('a;b');SELECT s.v FROM s;");
  EXPECT_NE(tricky.find("a;b"), std::string::npos);
}

TEST_F(ShellTest, ErrorsAreReported) {
  EXPECT_NE(Run("SELEKT 1").find("error"), std::string::npos);
  EXPECT_NE(Run("SELECT x FROM nope").find("error"), std::string::npos);
  EXPECT_NE(Run("INSERT INTO nope VALUES (1)").find("error"),
            std::string::npos);
  EXPECT_NE(Run("CREATE TABLE broken").find("error"), std::string::npos);
  EXPECT_NE(Run("INSERT INTO x VALUES ('unterminated)").find("error"),
            std::string::npos);
  Run("CREATE TABLE t (x INT)");
  EXPECT_NE(Run("SELECT t.x FROM t WHERE x ~ 5").find("error"),
            std::string::npos);
  EXPECT_EQ(Run(""), "");
  EXPECT_EQ(Run("   ;  "), "");
}

TEST_F(ShellTest, ShowTables) {
  Run("CREATE TABLE aa (x INT)");
  Run("CREATE TABLE bb (y STRING)");
  Run("INSERT INTO aa VALUES (1)");
  std::string out = Run("SHOW TABLES");
  EXPECT_NE(out.find("aa (1 rows"), std::string::npos);
  EXPECT_NE(out.find("bb (0 rows"), std::string::npos);
  EXPECT_NE(out.find("(2 tables)"), std::string::npos);
}

TEST_F(ShellTest, DurabilityCheckpointAndRecover) {
  std::string dir = std::string(::testing::TempDir()) + "mmdb_shellXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);

  Run("CREATE TABLE t (x INT)");
  EXPECT_EQ(Run("DURABILITY '" + dir + "' SYNC"),
            "ok: durability sync in " + dir);
  Run("INSERT INTO t VALUES (1)");
  Run("INSERT INTO t VALUES (2)");
  // Shell inserts take the non-transactional fast path (no WAL records);
  // the checkpoint is what makes them durable.
  EXPECT_EQ(Run("CHECKPOINT"), "ok: checkpointed");

  Database other;
  CommandShell recovered(&other);
  EXPECT_EQ(recovered.Execute("RECOVER '" + dir + "'"),
            "ok: recovered 2 tuples (0 log records merged, 0 dropped)");
  EXPECT_NE(recovered.Execute("SELECT t.x FROM t").find("(2 rows)"),
            std::string::npos);

  EXPECT_EQ(Run("DURABILITY OFF"), "ok: durability off");
}

TEST_F(ShellTest, DurabilityAndRecoverErrors) {
  EXPECT_NE(Run("DURABILITY").find("error"), std::string::npos);
  EXPECT_NE(Run("DURABILITY 'd' SOMETIMES").find("error"), std::string::npos);
  EXPECT_NE(Run("DURABILITY d SYNC").find("error"), std::string::npos);
  EXPECT_NE(Run("RECOVER").find("error"), std::string::npos);
  EXPECT_NE(Run("RECOVER '/nonexistent/mmdb'").find("error"),
            std::string::npos);
  Run("CREATE TABLE t (x INT)");
  // A non-empty database refuses to recover over itself.
  EXPECT_NE(Run("RECOVER '/tmp'").find("error"), std::string::npos);
}

TEST_F(ShellTest, NumericLiteralWidths) {
  Run("CREATE TABLE t (a INT, b BIGINT, c DOUBLE)");
  EXPECT_EQ(Run("INSERT INTO t VALUES (1, 5000000000, 2.5)"), "ok: 1 row");
  std::string out = Run("SELECT t.b, t.c FROM t WHERE a = 1");
  EXPECT_NE(out.find("(5000000000, 2.5)"), std::string::npos);
}

}  // namespace
}  // namespace mmdb
