#include <gtest/gtest.h>

#include "src/exec/sort.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

TEST(SortTest, SortTempListOrdersRows) {
  auto rel = testutil::IntRelation("r", {5, 1, 4, 2, 3});
  ResultDescriptor desc({rel.get()});
  desc.AddColumn(0, uint16_t{0});
  TempList list(desc);
  rel->ForEachTuple([&](TupleRef t) { list.Append1(t); });

  TempList sorted = SortTempList(list);
  ASSERT_EQ(sorted.size(), 5u);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(sorted.GetValue(r, 0).AsInt32(), static_cast<int32_t>(r + 1));
  }
}

TEST(SortTest, SortTempListSecondaryColumn) {
  // Same key, ordering falls through to seq.
  auto rel = testutil::IntRelation("r", {7, 7, 7});
  ResultDescriptor desc({rel.get()});
  desc.AddColumn(0, uint16_t{0});
  desc.AddColumn(0, uint16_t{1});
  TempList list(desc);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
  // Append in reverse of seq order.
  for (auto it = tuples.rbegin(); it != tuples.rend(); ++it) {
    list.Append1(*it);
  }
  TempList sorted = SortTempList(list);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(sorted.GetValue(r, 1).AsInt32(), static_cast<int32_t>(r));
  }
}

TEST(SortTest, SortTupleRefsByField) {
  auto rel = testutil::IntRelation("r", {9, 2, 7, 2, 1});
  std::vector<TupleRef> refs;
  rel->ForEachTuple([&](TupleRef t) { refs.push_back(t); });
  SortTupleRefs(&refs, rel->schema(), 0);
  for (size_t i = 1; i < refs.size(); ++i) {
    EXPECT_LE(testutil::KeyOf(refs[i - 1], *rel),
              testutil::KeyOf(refs[i], *rel));
  }
}

TEST(SortTest, CutoffVariantsProduceSameOrder) {
  Rng rng(12);
  std::vector<int32_t> keys(500);
  for (auto& k : keys) k = static_cast<int32_t>(rng.NextBounded(100));
  auto rel = testutil::IntRelation("r", keys);
  std::vector<TupleRef> a, b;
  rel->ForEachTuple([&](TupleRef t) {
    a.push_back(t);
    b.push_back(t);
  });
  SortTupleRefs(&a, rel->schema(), 0, /*insertion_cutoff=*/1);
  SortTupleRefs(&b, rel->schema(), 0, /*insertion_cutoff=*/64);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(testutil::KeyOf(a[i], *rel), testutil::KeyOf(b[i], *rel));
  }
}

}  // namespace
}  // namespace mmdb
