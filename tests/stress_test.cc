// Failure injection and stress: partial log-device propagation before a
// crash, repeated crash/recover cycles, concurrent transactional load with
// the background log device, and long index-maintenance churn through the
// relation layer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/index/ttree.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

TEST(FailureInjectionTest, CrashWithPartiallyPropagatedLog) {
  Database db;
  Relation::Options opt;
  opt.partition.slot_capacity = 4;  // many partitions
  db.CreateTable("t", {{"id", Type::kInt32}}, opt);
  for (int i = 0; i < 20; ++i) db.Insert("t", {Value(i)});
  db.Checkpoint();

  // Two committed transactions touching different partitions.
  for (int batch = 0; batch < 2; ++batch) {
    auto txn = db.Begin();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(txn->Insert("t", {Value(100 + batch * 10 + i)}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  // The log device pumps everything but propagates only SOME partitions —
  // the crash catches it mid-flight.
  db.log_device().Pump(1000);
  std::vector<uint32_t> pending = db.log_device().PendingPartitions("t");
  ASSERT_GE(pending.size(), 2u);
  db.log_device().PropagatePartition("t", pending[0]);

  ASSERT_TRUE(db.SimulateCrashAndRecover().ok());
  // Nothing committed may be lost, propagated or not.
  EXPECT_EQ(db.GetTable("t")->cardinality(), 40u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(db.GetTable("t")->primary_index()->Find(Value(i)), nullptr);
  }
  for (int i = 100; i < 120; ++i) {
    EXPECT_NE(db.GetTable("t")->primary_index()->Find(Value(i)), nullptr);
  }
}

TEST(FailureInjectionTest, RepeatedCrashRecoverCycles) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}, {"gen", Type::kInt32}});
  db.Checkpoint();
  size_t expected = 0;
  for (int gen = 0; gen < 5; ++gen) {
    auto txn = db.Begin();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(txn->Insert("t", {Value(gen * 100 + i), Value(gen)}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
    expected += 20;
    if (gen % 2 == 0) {
      db.RunLogDevice();  // some generations reach the disk copy...
    } else {
      db.log_device().Pump();  // ...others only the accumulation log
    }
    ASSERT_TRUE(db.SimulateCrashAndRecover().ok()) << "gen " << gen;
    EXPECT_EQ(db.GetTable("t")->cardinality(), expected) << "gen " << gen;
  }
}

TEST(FailureInjectionTest, UncommittedWorkNeverSurvives) {
  Database db;
  db.CreateTable("t", {{"id", Type::kInt32}});
  db.Insert("t", {Value(1)});
  db.Checkpoint();
  // An in-flight transaction's records sit uncommitted in the stable log
  // buffer; the log device must not drain them, so the crash discards them.
  auto txn = db.Begin();
  ASSERT_TRUE(txn->Insert("t", {Value(2)}).ok());
  // (crash before commit)
  db.log_device().Pump();
  // Only the auto-commit insert's (committed) record drains; the in-flight
  // transaction's record stays pinned in the stable buffer.
  EXPECT_EQ(db.log_device().accumulated(), 1u);
  ASSERT_TRUE(db.SimulateCrashAndRecover().ok());
  EXPECT_EQ(db.GetTable("t")->cardinality(), 1u);
}

TEST(StressTest, ConcurrentWritersWithBackgroundLogDevice) {
  Database db;
  db.CreateTable("a", {{"id", Type::kInt32}});
  db.CreateTable("b", {{"id", Type::kInt32}});
  db.Checkpoint();
  db.log_device().StartBackground(std::chrono::milliseconds(1));

  constexpr int kPerThread = 100;
  std::atomic<int> committed_a{0}, committed_b{0};
  std::thread wa([&] {
    for (int i = 0; i < kPerThread; ++i) {
      auto txn = db.Begin();
      if (txn->Insert("a", {Value(i)}).ok() && txn->Commit().ok()) {
        ++committed_a;
      }
    }
  });
  std::thread wb([&] {
    for (int i = 0; i < kPerThread; ++i) {
      auto txn = db.Begin();
      if (txn->Insert("b", {Value(i)}).ok() && txn->Commit().ok()) {
        ++committed_b;
      }
    }
  });
  wa.join();
  wb.join();
  db.log_device().StopBackground();

  EXPECT_EQ(db.GetTable("a")->cardinality(),
            static_cast<size_t>(committed_a.load()));
  EXPECT_EQ(db.GetTable("b")->cardinality(),
            static_cast<size_t>(committed_b.load()));
  // Crash: everything committed must come back.
  ASSERT_TRUE(db.SimulateCrashAndRecover().ok());
  EXPECT_EQ(db.GetTable("a")->cardinality(),
            static_cast<size_t>(committed_a.load()));
  EXPECT_EQ(db.GetTable("b")->cardinality(),
            static_cast<size_t>(committed_b.load()));
}

TEST(StressTest, RelationChurnKeepsAllIndexesConsistent) {
  auto rel = testutil::IntRelation("r", {});
  auto* tree = testutil::AttachKeyIndex(rel.get(), IndexKind::kTTree);
  auto* hash = testutil::AttachKeyIndex(rel.get(), IndexKind::kExtendibleHash);
  auto* seq_index = [&] {
    auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 1);
    auto index = CreateIndex(IndexKind::kBTree, std::move(ops), IndexConfig());
    index->set_key_fields({1});
    return rel->AttachIndex(std::move(index));
  }();

  Rng rng(77);
  std::vector<TupleRef> live;
  int32_t next_key = 0;
  for (int op = 0; op < 5000; ++op) {
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 50 || live.empty()) {
      TupleRef t = rel->Insert({Value(next_key), Value(next_key)});
      ASSERT_NE(t, nullptr);
      ++next_key;
      live.push_back(t);
    } else if (dice < 75) {
      const size_t i = rng.NextBounded(live.size());
      ASSERT_TRUE(rel->Delete(live[i]).ok());
      live[i] = live.back();
      live.pop_back();
    } else {
      const size_t i = rng.NextBounded(live.size());
      ASSERT_TRUE(rel->UpdateField(live[i], 0, Value(next_key++)).ok());
    }
  }
  EXPECT_EQ(tree->size(), live.size());
  EXPECT_EQ(hash->size(), live.size());
  EXPECT_EQ(seq_index->size(), live.size());
  EXPECT_TRUE(static_cast<TTree*>(tree)->CheckInvariants());
  // Every live tuple reachable through every index.
  for (TupleRef t : live) {
    const int32_t key = testutil::KeyOf(t, *rel);
    std::vector<TupleRef> hits;
    tree->FindAll(Value(key), &hits);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), t) != hits.end());
    hits.clear();
    hash->FindAll(Value(key), &hits);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), t) != hits.end());
  }
}

TEST(StressTest, PartitionReuseAfterHeavyDeleteInsert) {
  Relation::Options opt;
  opt.partition.slot_capacity = 32;
  Schema schema({{"k", Type::kInt32}});
  Relation rel("r", schema, opt);
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), 0);
  auto index = CreateIndex(IndexKind::kTTree, std::move(ops), IndexConfig());
  index->set_key_fields({0});
  rel.AttachIndex(std::move(index));

  // Fill, empty, refill several times: partition count must stabilize
  // (slots are recycled, not leaked).
  size_t peak_partitions = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<TupleRef> tuples;
    for (int i = 0; i < 500; ++i) {
      TupleRef t = rel.Insert({Value(i)});
      ASSERT_NE(t, nullptr);
      tuples.push_back(t);
    }
    if (round == 0) peak_partitions = rel.partitions().size();
    EXPECT_LE(rel.partitions().size(), peak_partitions + 1);
    for (TupleRef t : tuples) ASSERT_TRUE(rel.Delete(t).ok());
    EXPECT_EQ(rel.cardinality(), 0u);
  }
}

}  // namespace
}  // namespace mmdb
