// Key-type coverage: everything in the index study runs on int32 keys; the
// engine must behave identically for string keys (variable length, stored
// in the partition heap) and doubles.  Section 2.2's argument for
// pointer-based indices is precisely that long/variable fields cost the
// index nothing.

#include <gtest/gtest.h>

#include <set>

#include "src/core/database.h"
#include "src/core/query.h"
#include "src/exec/join.h"
#include "src/exec/select.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

struct Param {
  IndexKind kind;
  int node_size;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string name = IndexKindName(info.param.kind);
  for (char& c : name) {
    if (c == ' ') c = '_';
    if (c == '+') c = 'p';  // gtest param names must be alphanumeric/_
  }
  return name + "_n" + std::to_string(info.param.node_size);
}

std::string NthWord(int i) {
  // Distinct deterministic strings of varying length.
  std::string s = "w";
  for (int v = i; v > 0; v /= 7) s += static_cast<char>('a' + v % 7);
  s += std::to_string(i);
  return s;
}

class StringKeyIndexTest : public ::testing::TestWithParam<Param> {};

TEST_P(StringKeyIndexTest, InsertFindEraseOnStrings) {
  Schema schema({{"word", Type::kString}, {"n", Type::kInt32}});
  Relation rel("words", schema);
  constexpr int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ASSERT_NE(rel.Insert({Value(NthWord(i)), Value(i)}), nullptr);
  }
  IndexConfig config;
  config.node_size = GetParam().node_size;
  config.expected = kN;
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), 0);
  auto index = CreateIndex(GetParam().kind, std::move(ops), config);
  rel.ForEachTuple([&](TupleRef t) { ASSERT_TRUE(index->Insert(t)); });
  EXPECT_EQ(index->size(), static_cast<size_t>(kN));

  for (int i = 0; i < kN; ++i) {
    TupleRef hit = index->Find(Value(NthWord(i)));
    ASSERT_NE(hit, nullptr) << NthWord(i);
    EXPECT_EQ(tuple::GetInt32(hit, rel.schema().offset(1)), i);
  }
  EXPECT_EQ(index->Find(Value("not-a-word")), nullptr);

  // Erase a third and re-verify.
  std::vector<TupleRef> victims;
  rel.ForEachTuple([&](TupleRef t) {
    if (tuple::GetInt32(t, rel.schema().offset(1)) % 3 == 0) {
      victims.push_back(t);
    }
  });
  for (TupleRef t : victims) EXPECT_TRUE(index->Erase(t));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(index->Find(Value(NthWord(i))) != nullptr, i % 3 != 0);
  }
}

TEST_P(StringKeyIndexTest, OrderedScansAreLexicographic) {
  if (!IndexKindOrdered(GetParam().kind)) GTEST_SKIP();
  Schema schema({{"word", Type::kString}});
  Relation rel("words", schema);
  for (int i = 0; i < 200; ++i) rel.Insert({Value(NthWord(i))});
  IndexConfig config;
  config.node_size = GetParam().node_size;
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), 0);
  auto created = CreateIndex(GetParam().kind, std::move(ops), config);
  auto* index = static_cast<OrderedIndex*>(created.get());
  rel.ForEachTuple([&](TupleRef t) { index->Insert(t); });

  std::vector<std::string> seen;
  index->ScanAll([&](TupleRef t) {
    seen.emplace_back(tuple::GetString(t, 0));
    return true;
  });
  ASSERT_EQ(seen.size(), 200u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Structures, StringKeyIndexTest,
    ::testing::Values(Param{IndexKind::kArray, 2},
                      Param{IndexKind::kAvlTree, 2},
                      Param{IndexKind::kBTree, 6},
                      Param{IndexKind::kTTree, 6},
                      Param{IndexKind::kChainedBucketHash, 2},
                      Param{IndexKind::kExtendibleHash, 4},
                      Param{IndexKind::kLinearHash, 4},
                      Param{IndexKind::kModifiedLinearHash, 3}),
    ParamName);

TEST(StringJoinTest, HashAndMergeJoinsOnStrings) {
  Schema schema({{"word", Type::kString}, {"n", Type::kInt32}});
  auto make = [&](const char* name, int lo, int hi) {
    auto rel = std::make_unique<Relation>(name, schema);
    for (int i = lo; i < hi; ++i) rel->Insert({Value(NthWord(i)), Value(i)});
    auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
    auto index = CreateIndex(IndexKind::kTTree, std::move(ops), IndexConfig());
    index->set_key_fields({0});
    rel->AttachIndex(std::move(index));
    return rel;
  };
  auto a = make("a", 0, 60);    // words 0..59
  auto b = make("b", 40, 100);  // words 40..99; overlap = 20

  JoinSpec spec{a.get(), 0, b.get(), 0};
  EXPECT_EQ(HashJoin(spec).size(), 20u);
  EXPECT_EQ(SortMergeJoin(spec).size(), 20u);
  auto* at = static_cast<const OrderedIndex*>(a->indexes()[0].get());
  auto* bt = static_cast<const OrderedIndex*>(b->indexes()[0].get());
  EXPECT_EQ(TreeMergeJoin(spec, *at, *bt).size(), 20u);
  EXPECT_EQ(TreeJoin(spec, *bt).size(), 20u);
}

TEST(DoubleKeyTest, TTreeOnDoubles) {
  Schema schema({{"x", Type::kDouble}});
  Relation rel("d", schema);
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    rel.Insert({Value(rng.NextDouble() * 100.0)});
  }
  auto ops = std::make_shared<FieldKeyOps>(&rel.schema(), 0);
  auto created = CreateIndex(IndexKind::kTTree, std::move(ops), IndexConfig());
  auto* index = static_cast<OrderedIndex*>(created.get());
  rel.ForEachTuple([&](TupleRef t) { ASSERT_TRUE(index->Insert(t)); });

  double prev = -1;
  size_t n = 0;
  index->ScanAll([&](TupleRef t) {
    const double x = tuple::GetDouble(t, 0);
    EXPECT_GE(x, prev);
    prev = x;
    ++n;
    return true;
  });
  EXPECT_EQ(n, 500u);
  // Range scan over [25, 75).
  Value lo(25.0), hi(75.0);
  size_t in_range = 0;
  index->ScanRange({&lo, true}, {&hi, false}, [&](TupleRef t) {
    const double x = tuple::GetDouble(t, 0);
    EXPECT_GE(x, 25.0);
    EXPECT_LT(x, 75.0);
    ++in_range;
    return true;
  });
  EXPECT_GT(in_range, 100u);
}

TEST(StringSelectionTest, PredicatesOnStrings) {
  Database db;
  db.CreateTable("t", {{"name", Type::kString}, {"n", Type::kInt32}});
  db.Insert("t", {Value("apple"), Value(1)});
  db.Insert("t", {Value("banana"), Value(2)});
  db.Insert("t", {Value("cherry"), Value(3)});

  QueryResult eq = db.Query("t").Where("name", CompareOp::kEq, "banana").Run();
  EXPECT_EQ(eq.rows.size(), 1u);
  QueryResult range =
      db.Query("t").Where("name", CompareOp::kGt, "apple").Run();
  EXPECT_EQ(range.rows.size(), 2u);
  QueryResult ne = db.Query("t").Where("name", CompareOp::kNe, "apple").Run();
  EXPECT_EQ(ne.rows.size(), 2u);
}

}  // namespace
}  // namespace mmdb
