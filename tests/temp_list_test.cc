#include <gtest/gtest.h>

#include "src/storage/temp_list.h"
#include "src/storage/tuple.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

TEST(ResultDescriptorTest, AddColumnValidation) {
  auto rel = testutil::IntRelation("r", {1});
  ResultDescriptor desc({rel.get()});
  EXPECT_TRUE(desc.AddColumn(0, uint16_t{0}));
  EXPECT_TRUE(desc.AddColumn(0, uint16_t{1}, "sequence"));
  EXPECT_FALSE(desc.AddColumn(0, uint16_t{9}));      // bad field
  EXPECT_FALSE(desc.AddColumn(3, uint16_t{0}));      // bad source
  EXPECT_FALSE(desc.AddColumn(0, std::vector<uint16_t>{}));  // empty path
  EXPECT_EQ(desc.columns().size(), 2u);
  EXPECT_EQ(desc.columns()[0].label, "r.key");
  EXPECT_EQ(desc.columns()[1].label, "sequence");
}

TEST(TempListTest, AppendAndAccess) {
  auto r1 = testutil::IntRelation("a", {10, 20});
  auto r2 = testutil::IntRelation("b", {30});
  std::vector<TupleRef> a_tuples, b_tuples;
  r1->ForEachTuple([&](TupleRef t) { a_tuples.push_back(t); });
  r2->ForEachTuple([&](TupleRef t) { b_tuples.push_back(t); });

  ResultDescriptor desc({r1.get(), r2.get()});
  desc.AddColumn(0, uint16_t{0});
  desc.AddColumn(1, uint16_t{0});
  TempList list(desc);
  list.Append2(a_tuples[0], b_tuples[0]);
  list.Append2(a_tuples[1], b_tuples[0]);

  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.width(), 2u);
  EXPECT_EQ(list.At(1, 0), a_tuples[1]);
  EXPECT_EQ(list.GetValue(0, 0), Value(10));
  EXPECT_EQ(list.GetValue(1, 0), Value(20));
  EXPECT_EQ(list.GetValue(0, 1), Value(30));
  EXPECT_EQ(list.RowToString(0), "(10, 30)");
}

TEST(TempListTest, SinglePointerRows) {
  auto rel = testutil::IntRelation("r", {5});
  TupleRef t = nullptr;
  rel->ForEachTuple([&](TupleRef u) { t = u; });
  ResultDescriptor desc({rel.get()});
  desc.AddColumn(0, uint16_t{0});
  TempList list(desc);
  list.Append1(t);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.GetValue(0, 0), Value(5));
}

TEST(TempListTest, ForeignKeyPathColumn) {
  // Employee(dept:pointer, age) -> Department(name, id): the Query 1 shape.
  Schema dept_schema({{"name", Type::kString}, {"id", Type::kInt32}});
  Relation dept("dept", dept_schema);
  TupleRef toy = dept.Insert({Value("Toy"), Value(459)});
  ASSERT_NE(toy, nullptr);

  Schema emp_schema({{"dept", Type::kPointer}, {"age", Type::kInt32}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, &dept, 1).ok());
  TupleRef e = emp.Insert({Value(toy), Value(66)});
  ASSERT_NE(e, nullptr);

  ResultDescriptor desc({&emp});
  // "emp.dept.name": hop the pointer field, read the department name.
  ASSERT_TRUE(desc.AddColumn(0, std::vector<uint16_t>{0, 0}));
  ASSERT_TRUE(desc.AddColumn(0, uint16_t{1}));
  TempList list(desc);
  list.Append1(e);

  EXPECT_EQ(list.GetValue(0, 0), Value("Toy"));
  EXPECT_EQ(list.GetValue(0, 1), Value(66));
  EXPECT_EQ(desc.columns()[0].label, "dept.name");
  EXPECT_EQ(list.ResolveColumnTuple(0, 0), toy);
}

TEST(TempListTest, FkPathRejectedWithoutDeclaration) {
  Schema dept_schema({{"id", Type::kInt32}});
  Relation dept("dept", dept_schema);
  Schema emp_schema({{"dept", Type::kPointer}});
  Relation emp("emp", emp_schema);  // no DeclareForeignKey
  ResultDescriptor desc({&emp});
  EXPECT_FALSE(desc.AddColumn(0, std::vector<uint16_t>{0, 0}));
}

TEST(TempListTest, NullPointerHopYieldsNullValue) {
  Schema dept_schema({{"id", Type::kInt32}});
  Relation dept("dept", dept_schema);
  Schema emp_schema({{"dept", Type::kPointer}});
  Relation emp("emp", emp_schema);
  ASSERT_TRUE(emp.DeclareForeignKey(0, &dept, 0).ok());
  TupleRef e = emp.Insert({Value(TupleRef{nullptr})});
  ASSERT_NE(e, nullptr);
  ResultDescriptor desc({&emp});
  ASSERT_TRUE(desc.AddColumn(0, std::vector<uint16_t>{0, 0}));
  TempList list(desc);
  list.Append1(e);
  EXPECT_EQ(list.ResolveColumnTuple(0, 0), nullptr);
}

TEST(TempListTest, ReserveAndClear) {
  auto rel = testutil::IntRelation("r", {1, 2, 3});
  ResultDescriptor desc({rel.get()});
  TempList list(desc);
  list.Reserve(3);
  rel->ForEachTuple([&](TupleRef t) { list.Append1(t); });
  EXPECT_EQ(list.size(), 3u);
  list.Clear();
  EXPECT_EQ(list.size(), 0u);
}

}  // namespace
}  // namespace mmdb
