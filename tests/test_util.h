// Shared helpers for the mmdb test suite.

#ifndef MMDB_TESTS_TEST_UTIL_H_
#define MMDB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/index/index.h"
#include "src/index/key_ops.h"
#include "src/storage/relation.h"
#include "src/storage/tuple.h"
#include "src/util/rng.h"

namespace mmdb {
namespace testutil {

/// A relation with schema (key:int32, seq:int32) filled with the given join
/// column values (seq = position).  No index attached unless requested.
inline std::unique_ptr<Relation> IntRelation(
    const std::string& name, const std::vector<int32_t>& keys) {
  Schema schema({{"key", Type::kInt32}, {"seq", Type::kInt32}});
  auto rel = std::make_unique<Relation>(name, schema);
  int32_t seq = 0;
  for (int32_t k : keys) {
    rel->Insert({Value(k), Value(seq++)});
  }
  return rel;
}

/// Attaches an index of `kind` on field 0 ("key") to an IntRelation.
inline TupleIndex* AttachKeyIndex(Relation* rel, IndexKind kind,
                                  IndexConfig config = {}) {
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  if (config.expected == 1024 && rel->cardinality() > 0) {
    config.expected = rel->cardinality();
  }
  auto index = CreateIndex(kind, std::move(ops), config);
  index->set_name(rel->name() + ".key." + IndexKindName(kind));
  index->set_key_fields({0});
  return rel->AttachIndex(std::move(index));
}

/// Key of a tuple in an IntRelation.
inline int32_t KeyOf(TupleRef t, const Relation& rel) {
  return tuple::GetInt32(t, rel.schema().offset(0));
}

/// Sorted keys collected from an index scan (ordered or hash).
inline std::vector<int32_t> CollectKeys(const TupleIndex& index,
                                        const Relation& rel) {
  std::vector<int32_t> out;
  auto take = [&](TupleRef t) {
    out.push_back(KeyOf(t, rel));
    return true;
  };
  if (IndexKindOrdered(index.kind())) {
    static_cast<const OrderedIndex&>(index).ScanAll(take);
  } else {
    static_cast<const HashIndex&>(index).ScanAll(take);
    std::sort(out.begin(), out.end());
  }
  return out;
}

/// Distinct shuffled int keys in [0, n).
inline std::vector<int32_t> ShuffledKeys(size_t n, uint64_t seed = 7) {
  std::vector<int32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<int32_t>(i);
  Rng rng(seed);
  rng.Shuffle(&keys);
  return keys;
}

}  // namespace testutil
}  // namespace mmdb

#endif  // MMDB_TESTS_TEST_UTIL_H_
