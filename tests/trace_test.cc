// Tests for src/util/trace: span recording on/off, nesting depth, the
// ring buffer's overwrite discipline, cross-thread RecordSpan, and the
// chrome://tracing JSON rendering.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/util/trace.h"

namespace mmdb {
namespace {

// Tracing state is process-global; every test starts from scratch.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { trace::Disable(); }
  void TearDown() override { trace::Disable(); }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  trace::Enable();
  trace::Disable();
  {
    trace::Span span("ignored");
    EXPECT_FALSE(span.active());
  }
  trace::RecordSpan("also_ignored", trace::Clock::now(), trace::Clock::now());
  EXPECT_TRUE(trace::Snapshot().empty());
  EXPECT_EQ(trace::TotalRecorded(), 0u);
}

TEST_F(TraceTest, SpansNestWithDepthAndCloseInnerFirst) {
  trace::Enable();
  {
    trace::Span outer("outer");
    trace::Span inner("inner");
    EXPECT_TRUE(outer.active());
    EXPECT_TRUE(inner.active());
  }
  auto spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans land when they *close*: inner first at depth 1, outer at 0.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].dur_ns, spans[0].dur_ns);  // outer encloses inner
  EXPECT_EQ(spans[0].tid, spans[1].tid);
}

TEST_F(TraceTest, ArgsFragmentsJoinWithCommas) {
  trace::Enable();
  {
    trace::Span span("tagged");
    span.AddArgs("\"mode\":\"S\"");
    span.AddArgs("\"partition\":3");
  }
  auto spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].args, "\"mode\":\"S\",\"partition\":3");
}

TEST_F(TraceTest, RingOverwritesOldestButCountsEverything) {
  trace::Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    trace::Span span("s");
  }
  auto spans = trace::Snapshot();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(trace::TotalRecorded(), 10u);
}

TEST_F(TraceTest, EnableResetsTheBufferAndClearKeepsRecording) {
  trace::Enable();
  { trace::Span span("first"); }
  trace::Enable();  // fresh buffer
  EXPECT_TRUE(trace::Snapshot().empty());
  { trace::Span span("second"); }
  trace::Clear();
  EXPECT_TRUE(trace::Snapshot().empty());
  { trace::Span span("third"); }  // still enabled after Clear
  ASSERT_EQ(trace::Snapshot().size(), 1u);
  EXPECT_STREQ(trace::Snapshot()[0].name, "third");
}

TEST_F(TraceTest, CrossThreadRecordSpanAndDistinctThreadIds) {
  trace::Enable();
  const auto start = trace::Clock::now();
  uint32_t main_tid = 0;
  {
    trace::Span span("on_main");
  }
  std::thread worker([&] {
    trace::RecordSpan("queue_wait", start, trace::Clock::now(),
                      "\"queued\":true");
    trace::Span span("on_worker");
  });
  worker.join();
  auto spans = trace::Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  main_tid = spans[0].tid;
  EXPECT_STREQ(spans[1].name, "queue_wait");
  EXPECT_NE(spans[1].tid, main_tid);
  EXPECT_EQ(spans[1].args, "\"queued\":true");
  EXPECT_GT(spans[1].dur_ns, 0u);
}

TEST_F(TraceTest, ChromeJsonHasTraceEventsWithCompletePhase) {
  trace::Enable();
  {
    trace::Span span("render_me");
    span.AddArgs("\"k\":\"v\"");
  }
  const std::string json = trace::ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"render_me\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeJsonRoundTripsThroughAFile) {
  trace::Enable();
  { trace::Span span("to_disk"); }
  const std::string path = ::testing::TempDir() + "mmdb_trace_test.json";
  std::string error;
  ASSERT_TRUE(trace::WriteChromeJson(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("to_disk"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAllLand) {
  trace::Enable(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        trace::Span span("burst");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(trace::TotalRecorded(), uint64_t{kThreads} * kSpansEach);
  EXPECT_EQ(trace::Snapshot().size(), size_t{kThreads} * kSpansEach);
}

}  // namespace
}  // namespace mmdb
