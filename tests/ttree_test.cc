// T Tree specifics (Section 3.2.1): node occupancy discipline, GLB
// transfers, balance, and the min/max-count slack that trades storage
// utilization against rotation frequency.

#include <gtest/gtest.h>

#include <cmath>

#include "src/index/ttree.h"
#include "src/util/counters.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

std::unique_ptr<TTree> MakeTree(Relation* rel, int node_size, int slack = 2) {
  IndexConfig config;
  config.node_size = node_size;
  config.min_slack = slack;
  auto ops = std::make_shared<FieldKeyOps>(&rel->schema(), 0);
  return std::make_unique<TTree>(std::move(ops), config);
}

TEST(TTreeTest, ConfigClamping) {
  auto rel = testutil::IntRelation("r", {});
  auto t = MakeTree(rel.get(), 10, 2);
  EXPECT_EQ(t->max_count(), 10);
  EXPECT_EQ(t->min_count(), 8);
  auto tiny = MakeTree(rel.get(), 1, 2);
  EXPECT_EQ(tiny->max_count(), 1);
  EXPECT_EQ(tiny->min_count(), 1);
}

TEST(TTreeTest, NodeCountReflectsOccupancy) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  auto tree = MakeTree(rel.get(), 20);
  rel->ForEachTuple([&](TupleRef t) { tree->Insert(t); });
  EXPECT_EQ(tree->size(), 1000u);
  // 1000 elements in 20-wide nodes: at least 50 nodes, and with the min
  // slack the tree cannot waste more than ~2x.
  EXPECT_GE(tree->node_count(), 50u);
  EXPECT_LE(tree->node_count(), 110u);
  EXPECT_TRUE(tree->CheckInvariants());
}

TEST(TTreeTest, HeightIsLogarithmicInNodes) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(4000));
  auto tree = MakeTree(rel.get(), 8);
  rel->ForEachTuple([&](TupleRef t) { tree->Insert(t); });
  // ~500+ nodes; AVL height bound is ~1.44*log2(n).
  const double nodes = static_cast<double>(tree->node_count());
  EXPECT_LE(tree->Height(), static_cast<int>(1.45 * std::log2(nodes)) + 2);
  EXPECT_TRUE(tree->CheckInvariants());
}

TEST(TTreeTest, SequentialInsertAscendingAndDescending) {
  for (bool ascending : {true, false}) {
    auto rel = testutil::IntRelation("r", {});
    std::vector<int32_t> keys(500);
    for (int i = 0; i < 500; ++i) keys[i] = ascending ? i : 500 - i;
    auto rel2 = testutil::IntRelation("r", keys);
    auto tree = MakeTree(rel2.get(), 6);
    rel2->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
    EXPECT_TRUE(tree->CheckInvariants());
    EXPECT_EQ(testutil::CollectKeys(*tree, *rel2).size(), 500u);
  }
}

TEST(TTreeTest, GlbTransferKeepsOrderOnBoundedInsertOverflow) {
  // Force the paper's overflow case: fill a bounding node, then insert a
  // value it bounds; the old minimum must migrate to the GLB leaf.
  auto rel = testutil::IntRelation(
      "r", {10, 20, 30, 40, 50, 60, 70, 80, 5, 15, 25, 35, 45, 55, 65, 75});
  auto tree = MakeTree(rel.get(), 4);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
  EXPECT_TRUE(tree->CheckInvariants());
  std::vector<int32_t> keys = testutil::CollectKeys(*tree, *rel);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 16u);
}

TEST(TTreeTest, DeleteUnderflowBorrowsGlb) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(300));
  auto tree = MakeTree(rel.get(), 6);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    tree->Insert(t);
  });
  // Delete every other element; invariants must hold throughout.
  for (size_t i = 0; i < tuples.size(); i += 2) {
    ASSERT_TRUE(tree->Erase(tuples[i]));
    if (i % 30 == 0) ASSERT_TRUE(tree->CheckInvariants());
  }
  EXPECT_TRUE(tree->CheckInvariants());
  EXPECT_EQ(tree->size(), 150u);
}

TEST(TTreeTest, DrainToEmptyAndReuse) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(200));
  auto tree = MakeTree(rel.get(), 5);
  std::vector<TupleRef> tuples;
  rel->ForEachTuple([&](TupleRef t) {
    tuples.push_back(t);
    tree->Insert(t);
  });
  Rng rng(99);
  rng.Shuffle(&tuples);
  for (TupleRef t : tuples) ASSERT_TRUE(tree->Erase(t));
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->node_count(), 0u);
  EXPECT_TRUE(tree->CheckInvariants());
  for (TupleRef t : tuples) ASSERT_TRUE(tree->Insert(t));
  EXPECT_TRUE(tree->CheckInvariants());
}

TEST(TTreeTest, SlackReducesRotations) {
  // The paper: "having flexibility in the occupancy of internal nodes
  // allows storage utilization and insert/delete time to be traded off".
  // With slack, a mixed insert/delete stream needs fewer rotations.
  auto run = [&](int slack) -> uint64_t {
    auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(2000));
    std::vector<TupleRef> tuples;
    rel->ForEachTuple([&](TupleRef t) { tuples.push_back(t); });
    auto tree = MakeTree(rel.get(), 10, slack);
    for (TupleRef t : tuples) tree->Insert(t);
    counters::Reset();
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
      TupleRef t = tuples[rng.NextBounded(tuples.size())];
      if (!tree->Erase(t)) tree->Insert(t);
    }
    EXPECT_TRUE(tree->CheckInvariants());
    return counters::Snapshot().rotations;
  };
#if defined(MMDB_COUNTERS)
  const uint64_t rot_no_slack = run(0);
  const uint64_t rot_slack = run(2);
  EXPECT_LE(rot_slack, rot_no_slack);
#else
  run(0);
  run(2);
#endif
}

TEST(TTreeTest, StorageBytesTracksNodeCount) {
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(1000));
  auto tree = MakeTree(rel.get(), 16);
  rel->ForEachTuple([&](TupleRef t) { tree->Insert(t); });
  const size_t per_node =
      (tree->StorageBytes() - sizeof(TTree)) / tree->node_count();
  // Node: header + 16 slots of 8 bytes.
  EXPECT_GE(per_node, 16 * sizeof(TupleRef));
  EXPECT_LE(per_node, 16 * sizeof(TupleRef) + 64);
}

TEST(TTreeTest, SingleElementNodeDegeneratesToAvl) {
  // node_size=1 turns the T Tree into an AVL tree; everything still works.
  auto rel = testutil::IntRelation("r", testutil::ShuffledKeys(500));
  auto tree = MakeTree(rel.get(), 1);
  rel->ForEachTuple([&](TupleRef t) { ASSERT_TRUE(tree->Insert(t)); });
  EXPECT_TRUE(tree->CheckInvariants());
  EXPECT_EQ(tree->node_count(), 500u);
  std::vector<int32_t> keys = testutil::CollectKeys(*tree, *rel);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

}  // namespace
}  // namespace mmdb
