#include <gtest/gtest.h>

#include "src/storage/partition.h"
#include "src/storage/tuple.h"
#include "src/util/counters.h"

namespace mmdb {
namespace {

class TupleTest : public ::testing::Test {
 protected:
  TupleTest()
      : schema_({{"i", Type::kInt32},
                 {"l", Type::kInt64},
                 {"d", Type::kDouble},
                 {"s", Type::kString}}),
        partition_(0, &schema_, {}) {}

  Schema schema_;
  Partition partition_;
};

TEST_F(TupleTest, AccessorsRoundTrip) {
  TupleRef t = partition_.Insert(
      {Value(7), Value(int64_t{1} << 40), Value(2.25), Value("hello")});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(tuple::GetInt32(t, schema_.offset(0)), 7);
  EXPECT_EQ(tuple::GetInt64(t, schema_.offset(1)), int64_t{1} << 40);
  EXPECT_EQ(tuple::GetDouble(t, schema_.offset(2)), 2.25);
  EXPECT_EQ(tuple::GetString(t, schema_.offset(3)), "hello");
}

TEST_F(TupleTest, EmptyStringIsNullBlob) {
  TupleRef t = partition_.Insert({Value(1), Value(int64_t{2}), Value(0.0),
                                  Value(std::string())});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(tuple::GetString(t, schema_.offset(3)), "");
}

TEST_F(TupleTest, GetValueMaterializes) {
  TupleRef t = partition_.Insert(
      {Value(3), Value(int64_t{4}), Value(5.5), Value("abc")});
  EXPECT_EQ(tuple::GetValue(t, schema_, 0), Value(3));
  EXPECT_EQ(tuple::GetValue(t, schema_, 1), Value(int64_t{4}));
  EXPECT_EQ(tuple::GetValue(t, schema_, 2), Value(5.5));
  EXPECT_EQ(tuple::GetValue(t, schema_, 3), Value("abc"));
}

TEST_F(TupleTest, CompareFieldOrdersAndCounts) {
  TupleRef a = partition_.Insert(
      {Value(1), Value(int64_t{10}), Value(1.0), Value("aa")});
  TupleRef b = partition_.Insert(
      {Value(2), Value(int64_t{10}), Value(2.0), Value("ab")});
  counters::Reset();
  EXPECT_LT(tuple::CompareField(a, b, schema_, 0), 0);
  EXPECT_EQ(tuple::CompareField(a, b, schema_, 1), 0);
  EXPECT_LT(tuple::CompareField(a, b, schema_, 2), 0);
  EXPECT_LT(tuple::CompareField(a, b, schema_, 3), 0);
#if defined(MMDB_COUNTERS)
  EXPECT_EQ(counters::Snapshot().comparisons, 4u);
#endif
}

TEST_F(TupleTest, CompareValueFieldConvention) {
  TupleRef t = partition_.Insert(
      {Value(10), Value(int64_t{5}), Value(1.0), Value("mm")});
  // Returns <0 when the constant is below the stored field.
  EXPECT_LT(tuple::CompareValueField(Value(9), t, schema_, 0), 0);
  EXPECT_EQ(tuple::CompareValueField(Value(10), t, schema_, 0), 0);
  EXPECT_GT(tuple::CompareValueField(Value(11), t, schema_, 0), 0);
  // Cross-width constant against int32 field.
  EXPECT_EQ(tuple::CompareValueField(Value(int64_t{10}), t, schema_, 0), 0);
  EXPECT_EQ(tuple::CompareValueField(Value("mm"), t, schema_, 3), 0);
}

TEST_F(TupleTest, CrossSchemaCompareFields) {
  Schema other({{"x", Type::kInt64}});
  Partition po(1, &other, {});
  TupleRef a = partition_.Insert(
      {Value(42), Value(int64_t{0}), Value(0.0), Value("")});
  TupleRef b = po.Insert({Value(int64_t{42})});
  // int32 field vs int64 field widens.
  EXPECT_EQ(tuple::CompareFields(a, schema_, 0, b, other, 0), 0);
  TupleRef c = po.Insert({Value(int64_t{43})});
  EXPECT_LT(tuple::CompareFields(a, schema_, 0, c, other, 0), 0);
  EXPECT_GT(tuple::CompareFields(c, other, 0, a, schema_, 0), 0);
}

TEST_F(TupleTest, HashFieldConsistentWithEquality) {
  TupleRef a = partition_.Insert(
      {Value(5), Value(int64_t{6}), Value(7.0), Value("dup")});
  TupleRef b = partition_.Insert(
      {Value(5), Value(int64_t{9}), Value(8.0), Value("dup")});
  EXPECT_EQ(tuple::HashField(a, schema_, 0), tuple::HashField(b, schema_, 0));
  EXPECT_EQ(tuple::HashField(a, schema_, 3), tuple::HashField(b, schema_, 3));
  EXPECT_NE(tuple::HashField(a, schema_, 1), tuple::HashField(b, schema_, 1));
}

TEST_F(TupleTest, ToStringRendersRow) {
  TupleRef t = partition_.Insert(
      {Value(1), Value(int64_t{2}), Value(3.5), Value("x")});
  EXPECT_EQ(tuple::ToString(t, schema_), "(1, 2, 3.5, \"x\")");
}

TEST_F(TupleTest, PointerFieldRoundTrip) {
  Schema ps({{"fk", Type::kPointer}});
  Partition pp(2, &ps, {});
  TupleRef target = partition_.Insert(
      {Value(1), Value(int64_t{1}), Value(1.0), Value("t")});
  TupleRef holder = pp.Insert({Value(target)});
  EXPECT_EQ(tuple::GetPointer(holder, 0), target);
}

}  // namespace
}  // namespace mmdb
