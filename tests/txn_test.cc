// Deferred-update transactions (Section 2.4): commit applies + logs, abort
// discards, mid-commit failures roll back, lock timeouts break deadlocks.

#include <gtest/gtest.h>

#include <thread>

#include "src/txn/transaction.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : mgr_(&catalog_, &log_, &locks_) {
    rel_ = catalog_.CreateRelation(
        "r", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}));
    testutil::AttachKeyIndex(rel_, IndexKind::kTTree);
  }

  Catalog catalog_;
  StableLogBuffer log_;
  LockManager locks_;
  TransactionManager mgr_;
  Relation* rel_;
};

TEST_F(TxnTest, CommitAppliesBufferedWrites) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(1), Value(0)}).ok());
  ASSERT_TRUE(txn->Insert("r", {Value(2), Value(1)}).ok());
  EXPECT_EQ(rel_->cardinality(), 0u);  // deferred: nothing visible yet
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(rel_->cardinality(), 2u);
  EXPECT_EQ(txn->state(), Transaction::State::kCommitted);
  EXPECT_EQ(log_.committed_size(), 2u);  // records await the log device
  EXPECT_EQ(locks_.GrantedCount(), 0u);  // released
}

TEST_F(TxnTest, AbortDiscardsWrites) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(1), Value(0)}).ok());
  txn->Abort();
  EXPECT_EQ(rel_->cardinality(), 0u);
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(txn->state(), Transaction::State::kAborted);
  EXPECT_FALSE(txn->Insert("r", {Value(2), Value(0)}).ok());
  EXPECT_FALSE(txn->Commit().ok());
}

TEST_F(TxnTest, DeleteAndUpdateThroughTransaction) {
  TupleRef t = rel_->Insert({Value(10), Value(0)});
  rel_->Insert({Value(20), Value(1)});

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Update("r", t, 0, Value(15)).ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(testutil::KeyOf(t, *rel_), 15);

  auto txn2 = mgr_.Begin();
  ASSERT_TRUE(txn2->Delete("r", t).ok());
  ASSERT_TRUE(txn2->Commit().ok());
  EXPECT_EQ(rel_->cardinality(), 1u);
}

TEST_F(TxnTest, MidCommitFailureRollsBackEverything) {
  // A unique index makes the second buffered insert fail at apply time;
  // the first one must be undone and the log emptied.
  Relation* u = catalog_.CreateRelation("u", Schema({{"key", Type::kInt32}}));
  IndexConfig config;
  config.unique = true;
  testutil::AttachKeyIndex(u, IndexKind::kTTree, config);
  u->Insert({Value(7)});

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("u", {Value(1)}).ok());
  ASSERT_TRUE(txn->Insert("u", {Value(7)}).ok());  // will collide at commit
  Status s = txn->Commit();
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(txn->state(), Transaction::State::kAborted);
  EXPECT_EQ(u->cardinality(), 1u);  // only the pre-existing tuple
  EXPECT_EQ(u->primary_index()->Find(Value(1)), nullptr);
  EXPECT_EQ(log_.size(), 0u);  // "the log entry is removed"
  EXPECT_EQ(locks_.GrantedCount(), 0u);
}

TEST_F(TxnTest, LogRecordsCarryAfterImages) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(5), Value(9)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto drained = log_.DrainCommitted(10);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].op, LogOp::kInsert);
  EXPECT_EQ(drained[0].relation, "r");
  EXPECT_FALSE(drained[0].payload.empty());
  // The tid points at the live tuple.
  TupleRef t = rel_->RefOf(drained[0].tid);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(testutil::KeyOf(t, *rel_), 5);
}

TEST_F(TxnTest, ConflictingWritersSerialize) {
  TupleRef t = rel_->Insert({Value(1), Value(0)});
  auto t1 = mgr_.Begin();
  ASSERT_TRUE(t1->Update("r", t, 0, Value(2)).ok());  // holds partition X
  auto t2 = mgr_.Begin();
  // Same partition: t2's update times out and aborts (deadlock victim
  // policy).
  Status s = t2->Update("r", t, 0, Value(3));
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(t2->state(), Transaction::State::kAborted);
  ASSERT_TRUE(t1->Commit().ok());
  EXPECT_EQ(testutil::KeyOf(t, *rel_), 2);
}

TEST_F(TxnTest, ReadersShareAndBlockWriters) {
  rel_->Insert({Value(1), Value(0)});
  auto r1 = mgr_.Begin();
  auto r2 = mgr_.Begin();
  ASSERT_TRUE(r1->LockForRead("r").ok());
  ASSERT_TRUE(r2->LockForRead("r").ok());  // shared locks coexist
  auto w = mgr_.Begin();
  EXPECT_EQ(w->Insert("r", {Value(2), Value(1)}).code(),
            StatusCode::kAborted);  // structure lock held shared
  r1->Abort();
  r2->Abort();
  auto w2 = mgr_.Begin();
  ASSERT_TRUE(w2->Insert("r", {Value(2), Value(1)}).ok());
  ASSERT_TRUE(w2->Commit().ok());
}

TEST_F(TxnTest, UnknownRelationAndFieldRejected) {
  auto txn = mgr_.Begin();
  EXPECT_EQ(txn->Insert("nope", {Value(1)}).code(), StatusCode::kNotFound);
  EXPECT_EQ(txn->Insert("r", {Value(1)}).code(),
            StatusCode::kInvalidArgument);  // arity
  TupleRef t = rel_->Insert({Value(9), Value(0)});
  EXPECT_EQ(txn->Update("r", t, 5, Value(1)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TxnTest, ConcurrentNonConflictingTransactions) {
  // Different relations commit concurrently without interference.
  Relation* other =
      catalog_.CreateRelation("s", Schema({{"key", Type::kInt32}}));
  testutil::AttachKeyIndex(other, IndexKind::kTTree);

  std::thread a([&] {
    for (int i = 0; i < 50; ++i) {
      auto txn = mgr_.Begin();
      if (txn->Insert("r", {Value(i), Value(i)}).ok()) txn->Commit();
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 50; ++i) {
      auto txn = mgr_.Begin();
      if (txn->Insert("s", {Value(i)}).ok()) txn->Commit();
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(rel_->cardinality(), 50u);
  EXPECT_EQ(other->cardinality(), 50u);
}

}  // namespace
}  // namespace mmdb
