// Deferred-update transactions (Section 2.4): commit applies + logs, abort
// discards, mid-commit failures roll back, lock timeouts break deadlocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/index/partitioned_index.h"
#include "src/txn/transaction.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : mgr_(&catalog_, &log_, &locks_) {
    rel_ = catalog_.CreateRelation(
        "r", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}));
    testutil::AttachKeyIndex(rel_, IndexKind::kTTree);
  }

  Catalog catalog_;
  StableLogBuffer log_;
  LockManager locks_;
  TransactionManager mgr_;
  Relation* rel_;
};

TEST_F(TxnTest, CommitAppliesBufferedWrites) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(1), Value(0)}).ok());
  ASSERT_TRUE(txn->Insert("r", {Value(2), Value(1)}).ok());
  EXPECT_EQ(rel_->cardinality(), 0u);  // deferred: nothing visible yet
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(rel_->cardinality(), 2u);
  EXPECT_EQ(txn->state(), Transaction::State::kCommitted);
  // Two data records + the commit marker await the log device.
  EXPECT_EQ(log_.committed_size(), 3u);
  EXPECT_EQ(locks_.GrantedCount(), 0u);  // released
}

TEST_F(TxnTest, AbortDiscardsWrites) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(1), Value(0)}).ok());
  txn->Abort();
  EXPECT_EQ(rel_->cardinality(), 0u);
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(txn->state(), Transaction::State::kAborted);
  EXPECT_FALSE(txn->Insert("r", {Value(2), Value(0)}).ok());
  EXPECT_FALSE(txn->Commit().ok());
}

TEST_F(TxnTest, DeleteAndUpdateThroughTransaction) {
  TupleRef t = rel_->Insert({Value(10), Value(0)});
  rel_->Insert({Value(20), Value(1)});

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Update("r", t, 0, Value(15)).ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(testutil::KeyOf(t, *rel_), 15);

  auto txn2 = mgr_.Begin();
  ASSERT_TRUE(txn2->Delete("r", t).ok());
  ASSERT_TRUE(txn2->Commit().ok());
  EXPECT_EQ(rel_->cardinality(), 1u);
}

TEST_F(TxnTest, MidCommitFailureRollsBackEverything) {
  // A unique index makes the second buffered insert fail at apply time;
  // the first one must be undone and the log emptied.
  Relation* u = catalog_.CreateRelation("u", Schema({{"key", Type::kInt32}}));
  IndexConfig config;
  config.unique = true;
  testutil::AttachKeyIndex(u, IndexKind::kTTree, config);
  u->Insert({Value(7)});

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("u", {Value(1)}).ok());
  ASSERT_TRUE(txn->Insert("u", {Value(7)}).ok());  // will collide at commit
  Status s = txn->Commit();
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(txn->state(), Transaction::State::kAborted);
  EXPECT_EQ(u->cardinality(), 1u);  // only the pre-existing tuple
  EXPECT_EQ(u->primary_index()->Find(Value(1)), nullptr);
  EXPECT_EQ(log_.size(), 0u);  // "the log entry is removed"
  EXPECT_EQ(locks_.GrantedCount(), 0u);
}

TEST_F(TxnTest, LogRecordsCarryAfterImages) {
  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("r", {Value(5), Value(9)}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  auto drained = log_.DrainCommitted(10);
  ASSERT_EQ(drained.size(), 2u);  // data record + commit marker
  EXPECT_EQ(drained[0].op, LogOp::kInsert);
  EXPECT_EQ(drained[0].relation, "r");
  EXPECT_FALSE(drained[0].payload.empty());
  // The tid points at the live tuple.
  TupleRef t = rel_->RefOf(drained[0].tid);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(testutil::KeyOf(t, *rel_), 5);
}

TEST_F(TxnTest, ConflictingWritersSerialize) {
  TupleRef t = rel_->Insert({Value(1), Value(0)});
  auto t1 = mgr_.Begin();
  ASSERT_TRUE(t1->Update("r", t, 0, Value(2)).ok());  // holds partition X
  auto t2 = mgr_.Begin();
  // Same partition: t2's update times out and aborts (deadlock victim
  // policy).
  Status s = t2->Update("r", t, 0, Value(3));
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(t2->state(), Transaction::State::kAborted);
  ASSERT_TRUE(t1->Commit().ok());
  EXPECT_EQ(testutil::KeyOf(t, *rel_), 2);
}

TEST_F(TxnTest, ReadersShareAndBlockWriters) {
  rel_->Insert({Value(1), Value(0)});
  auto r1 = mgr_.Begin();
  auto r2 = mgr_.Begin();
  ASSERT_TRUE(r1->LockForRead("r").ok());
  ASSERT_TRUE(r2->LockForRead("r").ok());  // shared locks coexist
  auto w = mgr_.Begin();
  EXPECT_EQ(w->Insert("r", {Value(2), Value(1)}).code(),
            StatusCode::kAborted);  // structure lock held shared
  r1->Abort();
  r2->Abort();
  auto w2 = mgr_.Begin();
  ASSERT_TRUE(w2->Insert("r", {Value(2), Value(1)}).ok());
  ASSERT_TRUE(w2->Commit().ok());
}

TEST_F(TxnTest, UnknownRelationAndFieldRejected) {
  auto txn = mgr_.Begin();
  EXPECT_EQ(txn->Insert("nope", {Value(1)}).code(), StatusCode::kNotFound);
  EXPECT_EQ(txn->Insert("r", {Value(1)}).code(),
            StatusCode::kInvalidArgument);  // arity
  TupleRef t = rel_->Insert({Value(9), Value(0)});
  EXPECT_EQ(txn->Update("r", t, 5, Value(1)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TxnTest, AbortRollsBackBufferedUpdateBatch) {
  // A batch of buffered updates followed by Abort leaves every tuple
  // untouched (deferred updates: nothing was applied yet).
  TupleRef t1 = rel_->Insert({Value(1), Value(0)});
  TupleRef t2 = rel_->Insert({Value(2), Value(1)});

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Update("r", t1, 0, Value(100)).ok());
  ASSERT_TRUE(txn->Update("r", t2, 0, Value(200)).ok());
  txn->Abort();

  EXPECT_EQ(testutil::KeyOf(t1, *rel_), 1);
  EXPECT_EQ(testutil::KeyOf(t2, *rel_), 2);
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(locks_.GrantedCount(), 0u);
}

TEST_F(TxnTest, MidCommitUpdateFailureRollsBackEarlierUpdates) {
  // DML batch: the second update collides with a unique key at apply time,
  // so the already-applied first update must be undone (value and index).
  Relation* u = catalog_.CreateRelation("u", Schema({{"key", Type::kInt32}}));
  IndexConfig config;
  config.unique = true;
  TupleIndex* index = testutil::AttachKeyIndex(u, IndexKind::kTTree, config);
  TupleRef a = u->Insert({Value(1)});
  TupleRef b = u->Insert({Value(2)});
  u->Insert({Value(7)});

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Update("u", a, 0, Value(5)).ok());
  ASSERT_TRUE(txn->Update("u", b, 0, Value(7)).ok());  // collides at commit
  Status s = txn->Commit();
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(txn->state(), Transaction::State::kAborted);

  // First update undone: 1 is back, 5 is gone, index agrees with the heap.
  EXPECT_EQ(testutil::KeyOf(a, *u), 1);
  EXPECT_EQ(testutil::KeyOf(b, *u), 2);
  EXPECT_EQ(index->Find(Value(5)), nullptr);
  EXPECT_NE(index->Find(Value(1)), nullptr);
  EXPECT_NE(index->Find(Value(7)), nullptr);
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(locks_.GrantedCount(), 0u);
}

// Fixture for partition-local behavior: a relation with tiny partitions and
// a partition-local (facade) index, so DML stays under structure S +
// partition X.
class PartitionLocalTxnTest : public ::testing::Test {
 protected:
  PartitionLocalTxnTest() : mgr_(&catalog_, &log_, &locks_) {
    Relation::Options options;
    options.partition.slot_capacity = 4;
    rel_ = catalog_.CreateRelation(
        "pl", Schema({{"key", Type::kInt32}, {"seq", Type::kInt32}}),
        options);
    auto ops = std::make_shared<FieldKeyOps>(&rel_->schema(), 0);
    auto index = std::make_unique<PartitionedOrderedIndex>(
        rel_, IndexKind::kTTree, std::move(ops), IndexConfig{});
    index->set_name("pl.key.facade");
    index->set_key_fields({0});
    rel_->AttachIndex(std::move(index));
  }

  Catalog catalog_;
  StableLogBuffer log_;
  LockManager locks_;
  TransactionManager mgr_;
  Relation* rel_;
};

TEST_F(PartitionLocalTxnTest, InsertReservesOnePartitionNotTheStructureX) {
  // Partition 0 fills up; partition 1 keeps room, so an insert reserves it.
  std::vector<TupleRef> rows;
  for (int32_t i = 0; i < 7; ++i) {
    rows.push_back(rel_->Insert({Value(i), Value(i)}));
  }
  ASSERT_EQ(rel_->partitions().size(), 2u);
  ASSERT_EQ(rel_->PartitionOf(rows[0])->id(), 0u);

  auto writer = mgr_.Begin();
  ASSERT_TRUE(writer->Insert("pl", {Value(100), Value(100)}).ok());

  // The reservation holds the structure lock + partition 1, nothing else.
  const std::vector<LockId> held = locks_.HeldBy(writer->id());
  EXPECT_EQ(held.size(), 2u);
  EXPECT_NE(std::find(held.begin(), held.end(),
                      LockId{"pl", LockId::kRelationLock}),
            held.end());
  EXPECT_NE(std::find(held.begin(), held.end(), LockId{"pl", 1}), held.end());

  // Structure lock is only SHARED: a concurrent update in partition 0
  // (structure S + partition-0 X) proceeds instead of timing out.
  auto other = mgr_.Begin();
  other->set_lock_timeout(std::chrono::milliseconds(20));
  ASSERT_TRUE(other->Update("pl", rows[0], 0, Value(50)).ok());
  ASSERT_TRUE(other->Commit().ok());

  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(rel_->cardinality(), 8u);
  EXPECT_EQ(testutil::KeyOf(rows[0], *rel_), 50);
}

TEST_F(PartitionLocalTxnTest, DisjointPartitionUpdatesHoldLocksConcurrently) {
  std::vector<TupleRef> rows;
  for (int32_t i = 0; i < 8; ++i) {
    rows.push_back(rel_->Insert({Value(i), Value(i)}));
  }
  ASSERT_EQ(rel_->partitions().size(), 2u);
  TupleRef in_p0 = rows[0], in_p1 = rows[7];
  ASSERT_EQ(rel_->PartitionOf(in_p0)->id(), 0u);
  ASSERT_EQ(rel_->PartitionOf(in_p1)->id(), 1u);

  // Both writers buffer their update and hold their partition X at once —
  // under the old relation-wide protocol the second would deadlock-abort.
  auto t1 = mgr_.Begin();
  auto t2 = mgr_.Begin();
  t1->set_lock_timeout(std::chrono::milliseconds(20));
  t2->set_lock_timeout(std::chrono::milliseconds(20));
  ASSERT_TRUE(t1->Update("pl", in_p0, 0, Value(100)).ok());
  ASSERT_TRUE(t2->Update("pl", in_p1, 0, Value(200)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Commit().ok());
  EXPECT_EQ(testutil::KeyOf(in_p0, *rel_), 100);
  EXPECT_EQ(testutil::KeyOf(in_p1, *rel_), 200);
}

TEST_F(PartitionLocalTxnTest, StaleReservationEscalatesAtCommit) {
  // Partition 1 has one free slot, but the transaction buffers three
  // inserts — each reserves partition 1 (buffered writes are invisible to
  // PlanInsert).  At commit the overflow inserts find the reservation
  // stale, escalate to the structure X lock, and land in a fresh partition.
  for (int32_t i = 0; i < 7; ++i) rel_->Insert({Value(i), Value(i)});
  ASSERT_EQ(rel_->partitions().size(), 2u);

  auto txn = mgr_.Begin();
  ASSERT_TRUE(txn->Insert("pl", {Value(100), Value(0)}).ok());
  ASSERT_TRUE(txn->Insert("pl", {Value(101), Value(1)}).ok());
  ASSERT_TRUE(txn->Insert("pl", {Value(102), Value(2)}).ok());
  ASSERT_TRUE(txn->Commit().ok());

  EXPECT_EQ(rel_->cardinality(), 10u);
  EXPECT_GE(rel_->partitions().size(), 3u);
  TupleIndex* index = rel_->primary_index();
  for (int32_t k : {100, 101, 102}) {
    EXPECT_NE(index->Find(Value(k)), nullptr) << k;
  }
  EXPECT_EQ(locks_.GrantedCount(), 0u);
}

TEST_F(TxnTest, ConcurrentNonConflictingTransactions) {
  // Different relations commit concurrently without interference.
  Relation* other =
      catalog_.CreateRelation("s", Schema({{"key", Type::kInt32}}));
  testutil::AttachKeyIndex(other, IndexKind::kTTree);

  std::thread a([&] {
    for (int i = 0; i < 50; ++i) {
      auto txn = mgr_.Begin();
      if (txn->Insert("r", {Value(i), Value(i)}).ok()) txn->Commit();
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 50; ++i) {
      auto txn = mgr_.Begin();
      if (txn->Insert("s", {Value(i)}).ok()) txn->Commit();
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(rel_->cardinality(), 50u);
  EXPECT_EQ(other->cardinality(), 50u);
}

}  // namespace
}  // namespace mmdb
