// src/util/log.h: leveled filtering, rate limiting with suppressed-line
// accounting, sink plumbing.  Each test installs a capturing sink and
// restores the default on exit.

#include "src/util/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mmdb {
namespace logging {
namespace {

/// Captures every emitted line under a mutex (Log may be called from any
/// thread) and restores the stderr sink when destroyed.
class CaptureSink {
 public:
  CaptureSink() {
    SetSinkForTest([this](Level level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
      levels_.push_back(level);
    });
  }
  ~CaptureSink() { SetSinkForTest(nullptr); }

  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  std::vector<Level> levels() {
    std::lock_guard<std::mutex> lock(mu_);
    return levels_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
  std::vector<Level> levels_;
};

TEST(UtilLogTest, LevelNamesAreStable) {
  EXPECT_STREQ(LevelName(Level::kDebug), "DEBUG");
  EXPECT_STREQ(LevelName(Level::kInfo), "INFO");
  EXPECT_STREQ(LevelName(Level::kWarn), "WARN");
  EXPECT_STREQ(LevelName(Level::kError), "ERROR");
}

TEST(UtilLogTest, MinLevelFiltersLowerLevels) {
  CaptureSink sink;
  const Level saved = MinLevel();
  SetMinLevel(Level::kWarn);
  EXPECT_FALSE(Enabled(Level::kInfo));
  EXPECT_TRUE(Enabled(Level::kWarn));
  Info("t_filter", "dropped");
  Warn("t_filter", "kept");
  SetMinLevel(saved);

  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
  EXPECT_NE(lines[0].find("WARN"), std::string::npos);
}

TEST(UtilLogTest, OffSilencesEverything) {
  CaptureSink sink;
  const Level saved = MinLevel();
  SetMinLevel(Level::kOff);
  Error("t_off", "should not appear");
  SetMinLevel(saved);
  EXPECT_TRUE(sink.lines().empty());
}

TEST(UtilLogTest, LineCarriesLevelSubsystemAndMessage) {
  CaptureSink sink;
  const Level saved = MinLevel();
  SetMinLevel(Level::kDebug);
  Debug("t_fmt", "hello structured=1");
  SetMinLevel(saved);

  const auto lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("DEBUG"), std::string::npos);
  EXPECT_NE(lines[0].find("t_fmt"), std::string::npos);
  EXPECT_NE(lines[0].find("hello structured=1"), std::string::npos);
  const auto levels = sink.levels();
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], Level::kDebug);
}

TEST(UtilLogTest, RateLimiterCapsBurstPerStream) {
  CaptureSink sink;
  // A fresh (level, subsys) stream starts with a full bucket of kBurst
  // tokens; a tight loop far past the burst must be clipped near it (the
  // refill adds at most a token or two during the loop).
  for (int i = 0; i < 200; ++i) Warn("t_burst_a", "spam " + std::to_string(i));
  const size_t got = sink.lines().size();
  EXPECT_GE(got, static_cast<size_t>(kBurst) - 1);
  EXPECT_LE(got, static_cast<size_t>(kBurst) + 3);
}

TEST(UtilLogTest, SuppressionIsCountedNotSilent) {
  CaptureSink sink;
  const uint64_t before = SuppressedTotal();
  for (int i = 0; i < 100; ++i) Warn("t_burst_b", "spam");
  EXPECT_GT(SuppressedTotal(), before);
}

TEST(UtilLogTest, StreamsAreIndependentlyLimited) {
  CaptureSink sink;
  // Exhaust one stream; a different subsystem still has its full burst.
  for (int i = 0; i < 100; ++i) Warn("t_burst_c", "spam");
  const size_t after_first = sink.lines().size();
  Warn("t_burst_d", "other stream");
  EXPECT_EQ(sink.lines().size(), after_first + 1);
}

TEST(UtilLogTest, ConcurrentLoggingIsWholeLine) {
  CaptureSink sink;
  // 4 threads × 50 lines through one fresh stream: every captured line
  // must be intact (contains its thread marker exactly where expected).
  std::vector<std::thread> threads;
  std::atomic<int> started{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1);
      while (started.load() < 4) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        Error("t_conc", "thread-" + std::to_string(t) + " line");
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& line : sink.lines()) {
    EXPECT_NE(line.find("thread-"), std::string::npos) << line;
    EXPECT_NE(line.find(" line"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace logging
}  // namespace mmdb
