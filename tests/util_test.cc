#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/arena.h"
#include "src/util/counters.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/sort.h"
#include "src/util/status.h"
#include "src/util/timer.h"

namespace mmdb {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> histogram(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) histogram[rng.NextBounded(8)]++;
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMeanAndVariance) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, TruncatedNormalStaysInUnitInterval) {
  Rng rng(23);
  for (double stddev : {0.1, 0.4, 0.8}) {
    for (int i = 0; i < 2000; ++i) {
      double x = rng.NextTruncatedNormal(stddev);
      EXPECT_GT(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(RngTest, TruncatedNormalSkewIncreasesWithSmallSigma) {
  // Small sigma concentrates mass near 0 => smaller mean.
  Rng rng(29);
  auto mean = [&](double stddev) {
    double sum = 0;
    for (int i = 0; i < 20000; ++i) sum += rng.NextTruncatedNormal(stddev);
    return sum / 20000;
  };
  const double m01 = mean(0.1), m08 = mean(0.8);
  EXPECT_LT(m01, m08);
  EXPECT_LT(m01, 0.15);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---- HybridSort -------------------------------------------------------------

void CheckSortAgainstStd(std::vector<int> v, int cutoff) {
  std::vector<int> expected = v;
  std::sort(expected.begin(), expected.end());
  HybridSort(v.data(), v.size(), std::less<int>(), cutoff);
  EXPECT_EQ(v, expected);
}

TEST(HybridSortTest, RandomInputsAllCutoffs) {
  Rng rng(37);
  for (int cutoff : {1, 2, 10, 50}) {
    for (size_t n : {0u, 1u, 2u, 9u, 10u, 11u, 100u, 1000u}) {
      std::vector<int> v(n);
      for (auto& x : v) x = static_cast<int>(rng.NextBounded(1000));
      CheckSortAgainstStd(v, cutoff);
    }
  }
}

TEST(HybridSortTest, SortedAndReverseInputs) {
  std::vector<int> asc(500), desc(500);
  std::iota(asc.begin(), asc.end(), 0);
  for (int i = 0; i < 500; ++i) desc[i] = 500 - i;
  CheckSortAgainstStd(asc, 10);
  CheckSortAgainstStd(desc, 10);
}

TEST(HybridSortTest, ManyDuplicates) {
  Rng rng(41);
  std::vector<int> v(2000);
  for (auto& x : v) x = static_cast<int>(rng.NextBounded(3));
  CheckSortAgainstStd(v, 10);
}

TEST(HybridSortTest, AllEqual) {
  std::vector<int> v(777, 42);
  CheckSortAgainstStd(v, 10);
}

// ---- Arena / NodePool -------------------------------------------------------

TEST(ArenaTest, AllocationsAreDistinctAndAligned) {
  Arena arena(1024);
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(40);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
    for (void* q : ptrs) EXPECT_NE(p, q);
    ptrs.push_back(p);
  }
  EXPECT_GE(arena.allocated_bytes(), 100 * 40u);
}

TEST(ArenaTest, OversizedAllocationGetsOwnBlock) {
  Arena arena(256);
  void* big = arena.Allocate(10000);
  EXPECT_NE(big, nullptr);
  void* small = arena.Allocate(16);
  EXPECT_NE(small, nullptr);
}

TEST(NodePoolTest, RecyclesFreedNodes) {
  struct Node {
    int64_t a, b;
  };
  Arena arena;
  NodePool<Node> pool(&arena);
  void* p1 = pool.Allocate();
  EXPECT_EQ(pool.live(), 1u);
  pool.Free(p1);
  EXPECT_EQ(pool.live(), 0u);
  void* p2 = pool.Allocate();
  EXPECT_EQ(p1, p2);  // LIFO reuse
}

// ---- Counters ---------------------------------------------------------------

TEST(CountersTest, SnapshotAndReset) {
  counters::Reset();
  counters::BumpComparisons(5);
  counters::BumpHashCalls(2);
  OpCounters snap = counters::Snapshot();
#if defined(MMDB_COUNTERS)
  EXPECT_EQ(snap.comparisons, 5u);
  EXPECT_EQ(snap.hash_calls, 2u);
#else
  // Compiled out: bumps are no-ops and the snapshot stays zero.
  EXPECT_EQ(snap.comparisons, 0u);
  EXPECT_EQ(snap.hash_calls, 0u);
#endif
  counters::Reset();
  EXPECT_EQ(counters::Snapshot().comparisons, 0u);
}

TEST(CountersTest, Arithmetic) {
  OpCounters a, b;
  a.comparisons = 10;
  a.data_moves = 4;
  b.comparisons = 3;
  OpCounters d = a - b;
  EXPECT_EQ(d.comparisons, 7u);
  EXPECT_EQ(d.data_moves, 4u);
  d += b;
  EXPECT_EQ(d.comparisons, 10u);
  EXPECT_FALSE(a.ToString().empty());
}

// ---- Status -----------------------------------------------------------------

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: thing");
}

// ---- Hash -------------------------------------------------------------------

TEST(HashTest, Mix64Avalanche) {
  EXPECT_NE(HashMix64(1), HashMix64(2));
  EXPECT_NE(HashMix64(0x100000000ull), HashMix64(0));
}

TEST(HashTest, BytesAndStrings) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

// ---- Timer ------------------------------------------------------------------

TEST(TimerTest, MeasuresNonNegativeElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMicros(), t.ElapsedSeconds());
}

}  // namespace
}  // namespace mmdb
