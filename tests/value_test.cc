#include <gtest/gtest.h>

#include "src/storage/value.h"

namespace mmdb {
namespace {

TEST(TypeTest, Widths) {
  EXPECT_EQ(TypeWidth(Type::kInt32), 4u);
  EXPECT_EQ(TypeWidth(Type::kInt64), 8u);
  EXPECT_EQ(TypeWidth(Type::kDouble), 8u);
  EXPECT_EQ(TypeWidth(Type::kString), 8u);
  EXPECT_EQ(TypeWidth(Type::kPointer), 8u);
}

TEST(TypeTest, Names) {
  EXPECT_STREQ(TypeName(Type::kInt32), "int32");
  EXPECT_STREQ(TypeName(Type::kString), "string");
  EXPECT_STREQ(TypeName(Type::kPointer), "pointer");
}

TEST(ValueTest, TypeTagging) {
  EXPECT_EQ(Value(int32_t{1}).type(), Type::kInt32);
  EXPECT_EQ(Value(int64_t{1}).type(), Type::kInt64);
  EXPECT_EQ(Value(1.5).type(), Type::kDouble);
  EXPECT_EQ(Value("hi").type(), Type::kString);
  EXPECT_EQ(Value(TupleRef{nullptr}).type(), Type::kPointer);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_GT(Value(5).Compare(Value(2)), 0);
  EXPECT_EQ(Value(3).Compare(Value(3)), 0);
}

TEST(ValueTest, CrossWidthIntComparison) {
  EXPECT_EQ(Value(int32_t{7}).Compare(Value(int64_t{7})), 0);
  EXPECT_LT(Value(int32_t{7}).Compare(Value(int64_t{8})), 0);
  EXPECT_GT(Value(int64_t{1LL << 40}).Compare(Value(int32_t{100})), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
  EXPECT_GT(Value("zebra").Compare(Value("apple")), 0);
  EXPECT_LT(Value("ab").Compare(Value("abc")), 0);
}

TEST(ValueTest, DoubleComparison) {
  EXPECT_LT(Value(1.0).Compare(Value(2.0)), 0);
  EXPECT_EQ(Value(-0.0).Compare(Value(0.0)), 0);
}

TEST(ValueTest, PointerComparison) {
  int x[2] = {0, 0};
  TupleRef a = reinterpret_cast<TupleRef>(&x[0]);
  TupleRef b = reinterpret_cast<TupleRef>(&x[1]);
  EXPECT_LT(Value(a).Compare(Value(b)), 0);
  EXPECT_EQ(Value(a).Compare(Value(a)), 0);
}

TEST(ValueTest, OperatorsDelegateToCompare) {
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value("a") == Value("a"));
  EXPECT_FALSE(Value(2) < Value(1));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(42).Hash(), Value(42).Hash());
  EXPECT_EQ(Value("mm").Hash(), Value("mm").Hash());
  // Cross-width equal integers must hash equally.
  EXPECT_EQ(Value(int32_t{9}).Hash(), Value(int64_t{9}).Hash());
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(7).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, DefaultIsInt32Zero) {
  Value v;
  EXPECT_EQ(v.type(), Type::kInt32);
  EXPECT_EQ(v.AsInt32(), 0);
}

}  // namespace
}  // namespace mmdb
