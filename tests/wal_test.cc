// WAL format + segment replay: framing, CRC rejection, commit-marker
// filtering, torn tails, and rotation across segments.

#include "src/txn/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/txn/log_format.h"
#include "src/util/env.h"

namespace mmdb {
namespace {

TupleImage Image(std::initializer_list<int> bytes) {
  TupleImage out;
  for (int b : bytes) out.push_back(static_cast<std::byte>(b));
  return out;
}

LogRecord Data(uint64_t lsn, uint64_t txn, uint32_t slot) {
  LogRecord r;
  r.lsn = lsn;
  r.txn_id = txn;
  r.op = LogOp::kInsert;
  r.relation = "emp";
  r.tid = TupleId{0, slot};
  r.payload = Image({1, 2, 3});
  return r;
}

LogRecord Marker(uint64_t lsn, uint64_t txn) {
  LogRecord r;
  r.lsn = lsn;
  r.txn_id = txn;
  r.op = LogOp::kCommit;
  return r;
}

TEST(LogFormatTest, RecordRoundTrip) {
  LogRecord in = Data(42, 7, 9);
  in.op = LogOp::kUpdate;
  std::string buf;
  log_format::EncodeRecord(in, &buf);

  size_t pos = 0;
  LogRecord out;
  ASSERT_EQ(log_format::DecodeRecord(buf, &pos, &out),
            log_format::DecodeResult::kOk);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(out.lsn, 42u);
  EXPECT_EQ(out.txn_id, 7u);
  EXPECT_EQ(out.op, LogOp::kUpdate);
  EXPECT_EQ(out.relation, "emp");
  EXPECT_EQ(out.tid.partition, 0u);
  EXPECT_EQ(out.tid.slot, 9u);
  EXPECT_EQ(out.payload, Image({1, 2, 3}));
  EXPECT_EQ(log_format::DecodeRecord(buf, &pos, &out),
            log_format::DecodeResult::kEnd);
}

TEST(LogFormatTest, EveryTruncationPointIsTruncatedNotCrash) {
  // A frame cut anywhere is kTruncated — "more bytes may be coming", the
  // signal replication streaming relies on.  Replay maps it to a torn
  // tail.  It is never kOk and never advances the cursor.
  std::string buf;
  log_format::EncodeRecord(Data(1, 1, 0), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    if (cut == 0) continue;  // empty = clean end
    std::string_view truncated(buf.data(), cut);
    size_t pos = 0;
    LogRecord out;
    EXPECT_EQ(log_format::DecodeRecord(truncated, &pos, &out),
              log_format::DecodeResult::kTruncated)
        << "cut at " << cut;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(LogFormatTest, EverySingleByteFlipIsRejected) {
  std::string buf;
  log_format::EncodeRecord(Data(1, 1, 0), &buf);
  for (size_t i = 0; i < buf.size(); ++i) {
    std::string corrupt = buf;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    size_t pos = 0;
    LogRecord out;
    const auto r = log_format::DecodeRecord(corrupt, &pos, &out);
    // Flipping a length byte can make the frame claim more data than
    // exists (corrupt) — it can never decode to the original record.
    if (r == log_format::DecodeResult::kOk) {
      EXPECT_TRUE(out.lsn != 1 || out.txn_id != 1 || out.relation != "emp")
          << "undetected corruption at byte " << i;
      ADD_FAILURE() << "CRC accepted a flipped byte at " << i;
    }
  }
}

TEST(LogFormatTest, CheckpointRoundTripAndRejection) {
  const std::string image = "pretend disk image bytes";
  std::string file = log_format::EncodeCheckpoint(123, image);

  uint64_t lsn = 0;
  std::string_view got;
  ASSERT_TRUE(log_format::DecodeCheckpoint(file, &lsn, &got).ok());
  EXPECT_EQ(lsn, 123u);
  EXPECT_EQ(got, image);

  std::string flipped = file;
  flipped[flipped.size() - 3] ^= 0x1;
  EXPECT_FALSE(log_format::DecodeCheckpoint(flipped, &lsn, &got).ok());
  EXPECT_FALSE(
      log_format::DecodeCheckpoint(std::string_view(file).substr(0, 10), &lsn,
                                   &got)
          .ok());
}

TEST(LogFormatTest, FileNames) {
  EXPECT_EQ(log_format::WalFileName(7), "wal-00000000000000000007.log");
  EXPECT_EQ(log_format::CheckpointFileName(7),
            "checkpoint-00000000000000000007.ckpt");
  uint64_t v = 0;
  EXPECT_TRUE(log_format::ParseWalFileName("wal-00000000000000000042.log", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(log_format::ParseCheckpointFileName(
      "checkpoint-00000000000000000042.ckpt", &v));
  EXPECT_FALSE(log_format::ParseWalFileName("wal-42.log", &v));
  EXPECT_FALSE(log_format::ParseWalFileName("wal-0000000000000000004x.log", &v));
  EXPECT_FALSE(log_format::ParseCheckpointFileName("schema.mmdb", &v));
}

class WalReplayTest : public ::testing::Test {
 protected:
  void WriteSegment(uint64_t start, const std::vector<LogRecord>& records,
                    size_t truncate_tail_bytes = 0) {
    std::string bytes;
    for (const LogRecord& r : records) log_format::EncodeRecord(r, &bytes);
    if (truncate_tail_bytes > 0) {
      bytes.resize(bytes.size() - truncate_tail_bytes);
    }
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_.NewWritableFile("d/" + log_format::WalFileName(start),
                                     true, &f)
                    .ok());
    ASSERT_TRUE(f->Append(bytes).ok());
    ASSERT_TRUE(f->Sync().ok());
  }

  InMemEnv env_;
};

TEST_F(WalReplayTest, CommittedTransactionsOnly) {
  // txn 1 committed, txn 2 has no marker (crash before its commit record).
  WriteSegment(0, {Data(1, 1, 0), Data(2, 1, 1), Marker(3, 1), Data(4, 2, 2)});
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 0, &r).ok());
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].lsn, 1u);
  EXPECT_EQ(r.records[1].lsn, 2u);
  EXPECT_EQ(r.records_dropped, 1u);  // txn 2's orphan
  EXPECT_EQ(r.max_lsn, 4u);          // uncommitted LSNs still raise the floor
  EXPECT_FALSE(r.tail_corrupt);
  EXPECT_EQ(r.segments_read, 1u);
}

TEST_F(WalReplayTest, TruncatedFinalRecordStopsCleanly) {
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1), Data(3, 2, 1), Marker(4, 2)},
               /*truncate_tail_bytes=*/5);  // tears the final marker
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 0, &r).ok());
  // txn 2's marker is torn away, so its data record is dropped; txn 1 is
  // intact.
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 1u);
  EXPECT_TRUE(r.tail_corrupt);
  EXPECT_EQ(r.records_dropped, 2u);  // torn marker + orphaned data record
  EXPECT_EQ(r.max_lsn, 3u);
}

TEST_F(WalReplayTest, CorruptCrcMidLogDropsTheTail) {
  std::string bytes;
  for (const LogRecord& r :
       {Data(1, 1, 0), Marker(2, 1), Data(3, 2, 1), Marker(4, 2),
        Data(5, 3, 2), Marker(6, 3)}) {
    log_format::EncodeRecord(r, &bytes);
  }
  // Corrupt one payload byte of the third record (lsn 3): everything from
  // there on is unusable, even though later frames are intact.
  size_t pos = 0, frames = 0;
  std::string_view view = bytes;
  LogRecord scratch;
  while (frames < 2 &&
         log_format::DecodeRecord(view, &pos, &scratch) ==
             log_format::DecodeResult::kOk) {
    ++frames;
  }
  bytes[pos + 9] = static_cast<char>(bytes[pos + 9] ^ 0x20);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(
      env_.NewWritableFile("d/" + log_format::WalFileName(0), true, &f).ok());
  ASSERT_TRUE(f->Append(bytes).ok());

  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 0, &r).ok());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 1u);
  EXPECT_TRUE(r.tail_corrupt);
  EXPECT_EQ(r.records_dropped, 4u);  // the corrupt frame + three after it
  EXPECT_EQ(r.max_lsn, 2u);
}

TEST_F(WalReplayTest, AfterLsnFiltersCheckpointedRecords) {
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1), Data(3, 2, 1), Marker(4, 2)});
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 2, &r).ok());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 3u);
  EXPECT_EQ(r.max_lsn, 4u);
}

TEST_F(WalReplayTest, MultipleSegmentsInLsnOrder) {
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1)});
  WriteSegment(2, {Data(3, 2, 1), Marker(4, 2)});
  WriteSegment(4, {Data(5, 3, 2), Marker(6, 3)});
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 0, &r).ok());
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].lsn, 1u);
  EXPECT_EQ(r.records[2].lsn, 5u);
  EXPECT_EQ(r.segments_read, 3u);
  EXPECT_FALSE(r.tail_corrupt);
}

TEST_F(WalReplayTest, LsnRegressionReadsAsCorruption) {
  WriteSegment(0, {Data(5, 1, 0), Marker(6, 1), Data(2, 2, 1), Marker(7, 2)});
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 0, &r).ok());
  EXPECT_TRUE(r.tail_corrupt);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 5u);
}

TEST(WalWriterTest, AppendSyncRotate) {
  InMemEnv env;
  WalWriter wal(&env, "d");
  ASSERT_TRUE(wal.Open(0, /*truncate=*/true).ok());
  ASSERT_TRUE(wal.Append(Data(1, 1, 0)).ok());
  ASSERT_TRUE(wal.Append(Marker(2, 1)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.records_appended(), 2u);
  EXPECT_GT(wal.bytes_appended(), 0u);

  ASSERT_TRUE(wal.Rotate(2).ok());
  EXPECT_EQ(wal.segment_start(), 2u);
  ASSERT_TRUE(wal.Append(Data(3, 2, 1)).ok());
  ASSERT_TRUE(wal.Append(Marker(4, 2)).ok());
  ASSERT_TRUE(wal.Sync().ok());

  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env, "d", 0, &r).ok());
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.segments_read, 2u);
}

TEST(WalWriterTest, FirstErrorLatchesTheWriter) {
  InMemEnv base;
  FaultInjectionEnv env(&base);
  WalWriter wal(&env, "d");
  ASSERT_TRUE(wal.Open(0, true).ok());
  ASSERT_TRUE(wal.Append(Data(1, 1, 0)).ok());

  env.ArmFault(1, FaultInjectionEnv::FaultMode::kTornWrite);
  EXPECT_FALSE(wal.Append(Data(2, 1, 1)).ok());
  EXPECT_TRUE(wal.failed());
  env.Reset();  // the disk "recovers"...
  // ...but the writer must refuse to put a valid frame after the torn one.
  EXPECT_FALSE(wal.Append(Data(3, 1, 2)).ok());
  EXPECT_FALSE(wal.Sync().ok());

  // Replay sees the intact first record and stops at the torn frame.
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env, "d", 0, &r).ok());
  EXPECT_TRUE(r.tail_corrupt);
  EXPECT_EQ(r.max_lsn, 1u);
}

// ---- Manifest-aware replay: failures must be loud, never partial ------------

class WalManifestTest : public WalReplayTest {
 protected:
  void SaveManifest(const std::vector<WalSegmentInfo>& entries) {
    WalManifest m;
    for (const WalSegmentInfo& e : entries) ASSERT_TRUE(m.Append(e).ok());
    ASSERT_TRUE(m.Save(&env_, "d").ok());
  }

  uint64_t SegmentBytes(uint64_t start) {
    std::string data;
    EXPECT_TRUE(
        env_.ReadFile("d/" + log_format::WalFileName(start), &data).ok());
    return data.size();
  }
};

TEST_F(WalManifestTest, RoundTripAndChainValidation) {
  SaveManifest({{0, 2, 100}, {2, 5, 200}});
  WalManifest m;
  ASSERT_TRUE(WalManifest::Load(&env_, "d", &m).ok());
  ASSERT_EQ(m.segments().size(), 2u);
  EXPECT_EQ(m.segments()[1].end, 5u);
  EXPECT_EQ(m.Find(2)->bytes, 200u);
  EXPECT_EQ(m.Find(7), nullptr);

  // Non-chaining appends are refused, both directly and via Load.
  EXPECT_EQ(m.Append({7, 9, 50}).code(), StatusCode::kCorruption);  // gap
  EXPECT_EQ(m.Append({4, 9, 50}).code(), StatusCode::kCorruption);  // overlap
  EXPECT_EQ(m.Append({5, 4, 50}).code(), StatusCode::kCorruption);  // end<start

  // A missing manifest is an empty one (legacy dirs); a malformed one is
  // typed corruption.
  WalManifest fresh;
  ASSERT_TRUE(WalManifest::Load(&env_, "nowhere", &fresh).ok());
  EXPECT_TRUE(fresh.empty());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_.NewWritableFile("d/wal.manifest", true, &f).ok());
  ASSERT_TRUE(f->Append("not a manifest\n").ok());
  EXPECT_EQ(WalManifest::Load(&env_, "d", &m).code(), StatusCode::kCorruption);
}

TEST_F(WalManifestTest, PruneBelowDropsOnlyWholeLeadingSegments) {
  WalManifest m;
  ASSERT_TRUE(m.Append({0, 2, 10}).ok());
  ASSERT_TRUE(m.Append({2, 5, 10}).ok());
  ASSERT_TRUE(m.Append({5, 9, 10}).ok());
  m.PruneBelow(4);  // mid-segment floor: [2,5] must survive
  ASSERT_EQ(m.segments().size(), 2u);
  EXPECT_EQ(m.segments()[0].start, 2u);
  m.PruneBelow(9);
  EXPECT_TRUE(m.empty());
}

TEST_F(WalManifestTest, MissingSealedSegmentIsAGapNotAPartialReplay) {
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1)});
  WriteSegment(2, {Data(3, 2, 1), Marker(4, 2)});
  SaveManifest({{0, 2, SegmentBytes(0)}, {2, 4, SegmentBytes(2)}});
  ASSERT_TRUE(env_.RemoveFile("d/" + log_format::WalFileName(0)).ok());

  WalReplayResult r;
  Status s = ReplayWalDir(&env_, "d", 0, &r);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("gap"), std::string::npos) << s.ToString();
  EXPECT_TRUE(r.records.empty());

  // ...unless a checkpoint already covers the missing range: then replay
  // legitimately starts past it.
  WalReplayResult after;
  EXPECT_TRUE(ReplayWalDir(&env_, "d", 2, &after).ok());
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_EQ(after.records[0].lsn, 3u);
}

TEST_F(WalManifestTest, UnlistedSegmentInsideChainIsAnOverlap) {
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1)});
  WriteSegment(2, {Data(3, 2, 1), Marker(4, 2)});
  SaveManifest({{0, 4, SegmentBytes(0) + SegmentBytes(2)}});  // one entry, 0..4
  // wal-2.log exists but is not a chain member while the chain claims 0..4.
  WalReplayResult r;
  Status s = ReplayWalDir(&env_, "d", 0, &r);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("overlap"), std::string::npos) << s.ToString();
}

TEST_F(WalManifestTest, SealedSizeMismatchIsTypedCorruption) {
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1)});
  WriteSegment(2, {Data(3, 2, 1), Marker(4, 2)});
  SaveManifest({{0, 2, SegmentBytes(0) + 7}, {2, 4, SegmentBytes(2)}});
  WalReplayResult r;
  Status s = ReplayWalDir(&env_, "d", 0, &r);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("sealed"), std::string::npos) << s.ToString();
}

TEST_F(WalManifestTest, CorruptFrameInSealedSegmentIsTypedNotTailTear) {
  // The same single-byte flip that reads as a clean "torn tail" without a
  // manifest becomes hard corruption once a seal vouches for the segment.
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1)});
  WriteSegment(2, {Data(3, 2, 1), Marker(4, 2)});
  std::string data;
  ASSERT_TRUE(env_.ReadFile("d/" + log_format::WalFileName(0), &data).ok());
  data[data.size() - 1] = static_cast<char>(data[data.size() - 1] ^ 0x1);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(
      env_.NewWritableFile("d/" + log_format::WalFileName(0), true, &f).ok());
  ASSERT_TRUE(f->Append(data).ok());
  SaveManifest({{0, 2, data.size()}, {2, 4, SegmentBytes(2)}});

  WalReplayResult r;
  Status s = ReplayWalDir(&env_, "d", 0, &r);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("corrupt frame"), std::string::npos)
      << s.ToString();
  EXPECT_TRUE(r.records.empty());  // never a silent partial replay
}

TEST_F(WalManifestTest, UptoLsnReplaysHistoryAsOfThatMoment) {
  // txn 2 commits at lsn 4; a PITR target of 3 must treat it as still
  // open (its commit marker is in the future) and drop it, exactly as a
  // crash between lsn 3 and 4 would have.
  WriteSegment(0, {Data(1, 1, 0), Marker(2, 1), Data(3, 2, 1), Marker(4, 2)});
  WalReplayOptions options;
  options.upto_lsn = 3;
  WalReplayResult r;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", options, &r).ok());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 1u);
  EXPECT_FALSE(r.tail_corrupt);  // a PITR bound is not corruption

  // Target at the commit marker includes the transaction.
  options.upto_lsn = 4;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", options, &r).ok());
  ASSERT_EQ(r.records.size(), 2u);

  // Whole segments past the target are never even opened.
  WriteSegment(4, {Data(5, 3, 2), Marker(6, 3)});
  options.upto_lsn = 4;
  ASSERT_TRUE(ReplayWalDir(&env_, "d", options, &r).ok());
  EXPECT_EQ(r.segments_read, 1u);
  ASSERT_EQ(r.records.size(), 2u);
}

TEST_F(WalManifestTest, TargetBelowRetainedHistoryFailsLoudly) {
  // History began at lsn 0, but retention GC pruned segment [0,2] (and its
  // manifest entry) behind newer checkpoints; only [2,4] survives.
  WriteSegment(2, {Data(3, 2, 1), Marker(4, 2)});
  SaveManifest({{2, 4, SegmentBytes(2)}});

  // A replay base below the retained chain — the shape of a point-in-time
  // target older than every surviving checkpoint — must fail loudly, not
  // replay the surviving suffix as if it were the whole history.
  WalReplayOptions options;
  options.after_lsn = 0;
  options.upto_lsn = 3;
  WalReplayResult r;
  Status s = ReplayWalDir(&env_, "d", options, &r);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.ToString().find("predates retained history"), std::string::npos)
      << s.ToString();

  // A base the chain does cover replays normally.
  ASSERT_TRUE(ReplayWalDir(&env_, "d", 2, &r).ok());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 3u);
}

}  // namespace
}  // namespace mmdb
