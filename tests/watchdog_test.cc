// Watchdog: stalled-worker and wedged-loop detection via deterministic
// CheckNow passes (no reliance on the checker thread's timing), plus the
// quiet-when-idle and edge-triggered-alert properties.

#include "src/server/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/server/flight_recorder.h"
#include "src/util/log.h"
#include "src/util/metrics.h"

namespace mmdb {
namespace {

using std::chrono::milliseconds;

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    logging::SetSinkForTest([](logging::Level, const std::string&) {});
  }
  void TearDown() override { logging::SetSinkForTest(nullptr); }

  /// A watchdog with no checker thread started: every pass is an explicit
  /// CheckNow(), so deadlines are exercised by sleeping past them.
  MetricsRegistry registry;
  WatchdogOptions Opts(int deadline_ms) {
    WatchdogOptions o;
    o.interval = milliseconds(10);
    o.deadline = milliseconds(deadline_ms);
    return o;
  }
};

TEST_F(WatchdogTest, IdleWorkerNeverAlarms) {
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterWorker("w0");
  // Idle (registered, never Busy) across several deadlines: quiet.
  std::this_thread::sleep_for(milliseconds(60));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 0u);
  EXPECT_EQ(dog.stalled_workers(), 0u);

  // Busy-then-idle within the deadline: still quiet.
  beat->Busy(0x1111);
  beat->Idle();
  std::this_thread::sleep_for(milliseconds(60));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 0u);
}

TEST_F(WatchdogTest, StalledWorkerAlertsOnceAndRearmsAfterRecovery) {
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterWorker("w0");
  beat->Busy(0xABCD);
  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 1u);
  EXPECT_EQ(dog.stalled_workers(), 1u);

  // Still stuck: edge-triggered, no second alert.
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 1u);
  EXPECT_EQ(dog.stalled_workers(), 1u);

  // Recovers, then stalls again: a fresh alert.
  beat->Idle();
  dog.CheckNow();
  EXPECT_EQ(dog.stalled_workers(), 0u);
  beat->Busy(0xABCE);
  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 2u);
}

TEST_F(WatchdogTest, StallAlertLandsInSlowLogWithTraceId) {
  flight::ClearSlowLogForTest();
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterWorker("w0");
  beat->Busy(0x5744'0001);
  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  const std::string text = flight::SlowLogText();
  EXPECT_NE(text.find("0x57440001"), std::string::npos) << text;
  beat->Idle();
}

TEST_F(WatchdogTest, WedgedLoopAlertsAndPulseClears) {
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterLoop("loop");
  beat->Pulse();
  dog.CheckNow();
  EXPECT_EQ(dog.wedged_loops(), 0u);

  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 1u);
  EXPECT_EQ(dog.wedged_loops(), 1u);

  beat->Pulse();
  dog.CheckNow();
  EXPECT_EQ(dog.wedged_loops(), 0u);
}

TEST_F(WatchdogTest, RetiredBeatIsQuietUntilResumed) {
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterLoop("loop");
  beat->Pulse();
  beat->Retire();
  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 0u);

  // Resume re-arms from *now*: no instant stale-pulse alarm...
  beat->Resume();
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 0u);
  // ...but monitoring is live again.
  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  EXPECT_EQ(dog.alerts(), 1u);
}

TEST_F(WatchdogTest, MetricsSeriesAreRegistered) {
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterWorker("w0");
  beat->Busy(1);
  std::this_thread::sleep_for(milliseconds(40));
  dog.CheckNow();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("mmdb_watchdog_checks_total"), std::string::npos);
  EXPECT_NE(text.find("mmdb_watchdog_alerts_total 1"), std::string::npos);
  EXPECT_NE(text.find("mmdb_watchdog_stalled_workers 1"), std::string::npos);
  EXPECT_NE(text.find("mmdb_watchdog_wedged_loops 0"), std::string::npos);
  beat->Idle();
}

TEST_F(WatchdogTest, CheckerThreadDetectsAStallOnItsOwn) {
  // The only thread-driven test: start the checker, stall a worker, wait
  // for an alert with a generous timeout.
  Watchdog dog(&registry, Opts(20));
  Watchdog::Beat* beat = dog.RegisterWorker("w0");
  dog.Start();
  beat->Busy(42);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dog.alerts() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_GE(dog.alerts(), 1u);
  beat->Idle();
  dog.Stop();
}

}  // namespace
}  // namespace mmdb
