// The Section 3.3.1 relation generator: cardinality, duplicate percentage,
// truncated-normal duplicate distributions (Graph 3), semijoin selectivity.

#include <gtest/gtest.h>

#include <set>

#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

TEST(WorkloadTest, CardinalityHonored) {
  WorkloadGen gen(1);
  for (size_t n : {1u, 10u, 1000u}) {
    ColumnData col = gen.Generate({n, 0, 0.8});
    EXPECT_EQ(col.values.size(), n);
    EXPECT_EQ(col.uniques.size(), n);  // 0% duplicates
  }
}

TEST(WorkloadTest, ZeroCardinality) {
  WorkloadGen gen(1);
  ColumnData col = gen.Generate({0, 0, 0.8});
  EXPECT_TRUE(col.values.empty());
}

TEST(WorkloadTest, DuplicatePercentageControlsUniqueCount) {
  WorkloadGen gen(2);
  ColumnData col = gen.Generate({1000, 40, 0.8});
  EXPECT_EQ(col.values.size(), 1000u);
  EXPECT_EQ(col.uniques.size(), 600u);  // 1000 * (1 - 0.4)
  // Counts sum to the cardinality, each >= 1.
  int64_t total = 0;
  for (int32_t c : col.counts) {
    EXPECT_GE(c, 1);
    total += c;
  }
  EXPECT_EQ(total, 1000);
}

TEST(WorkloadTest, HundredPercentDuplicatesIsOneValue) {
  WorkloadGen gen(3);
  ColumnData col = gen.Generate({500, 100, 0.1});
  EXPECT_EQ(col.uniques.size(), 1u);
  EXPECT_EQ(col.values.size(), 500u);
  for (int32_t v : col.values) EXPECT_EQ(v, col.uniques[0]);
}

TEST(WorkloadTest, UniquesAreDistinctAcrossCalls) {
  WorkloadGen gen(4);
  ColumnData a = gen.Generate({500, 0, 0.8});
  ColumnData b = gen.Generate({500, 0, 0.8});
  std::set<int32_t> all(a.uniques.begin(), a.uniques.end());
  for (int32_t v : b.uniques) {
    EXPECT_TRUE(all.insert(v).second) << "value reused across relations";
  }
}

TEST(WorkloadTest, SkewedDistributionConcentratesMass) {
  // Graph 3: with sigma 0.1, the top 10% of values hold far more tuples
  // than with sigma 0.8.
  WorkloadGen gen(5);
  ColumnData skewed = gen.Generate({20000, 90, 0.1});
  ColumnData uniform = gen.Generate({20000, 90, 0.8});
  auto top10_share = [](const ColumnData& col) {
    std::vector<int32_t> counts = col.counts;
    std::sort(counts.begin(), counts.end(), std::greater<int32_t>());
    int64_t top = 0, total = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      if (i < counts.size() / 10) top += counts[i];
    }
    return static_cast<double>(top) / total;
  };
  EXPECT_GT(top10_share(skewed), top10_share(uniform) + 0.1);
}

TEST(WorkloadTest, DistributionCurveShape) {
  WorkloadGen gen(6);
  ColumnData skewed = gen.Generate({20000, 90, 0.1});
  std::vector<double> curve = WorkloadGen::DistributionCurve(skewed, 10);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front(), 0.0);
  EXPECT_NEAR(curve.back(), 100.0, 1e-9);
  // Monotone nondecreasing and concave-ish (descending counts).
  for (size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  // Skew: half the values already cover most of the tuples.
  EXPECT_GT(curve[5], 75.0);
}

TEST(WorkloadTest, SemijoinSelectivityControlsMatches) {
  WorkloadGen gen(7);
  ColumnData big = gen.Generate({2000, 0, 0.8});
  for (double pct : {0.0, 25.0, 100.0}) {
    ColumnData small = gen.GenerateMatching({1000, 0, 0.8}, big.uniques, pct);
    std::set<int32_t> big_set(big.uniques.begin(), big.uniques.end());
    size_t matching = 0;
    for (int32_t v : small.uniques) {
      if (big_set.contains(v)) ++matching;
    }
    EXPECT_NEAR(static_cast<double>(matching) / small.uniques.size(),
                pct / 100.0, 0.01);
  }
}

TEST(WorkloadTest, MatchingValuesAreSampledWithoutReplacement) {
  WorkloadGen gen(8);
  ColumnData big = gen.Generate({100, 0, 0.8});
  ColumnData small = gen.GenerateMatching({100, 0, 0.8}, big.uniques, 100.0);
  std::set<int32_t> s(small.uniques.begin(), small.uniques.end());
  EXPECT_EQ(s.size(), small.uniques.size());  // all distinct
}

TEST(WorkloadTest, BuildRelationMatchesColumn) {
  WorkloadGen gen(9);
  ColumnData col = gen.Generate({300, 50, 0.4});
  auto rel = WorkloadGen::BuildRelation("r", col);
  EXPECT_EQ(rel->cardinality(), 300u);
  ASSERT_NE(rel->primary_index(), nullptr);
  EXPECT_EQ(rel->primary_index()->size(), 300u);
  // Primary index is the array index used to scan relations in the paper.
  EXPECT_EQ(rel->primary_index()->kind(), IndexKind::kArray);
  std::multiset<int32_t> expected(col.values.begin(), col.values.end());
  std::multiset<int32_t> got;
  rel->ForEachTuple([&](TupleRef t) { got.insert(testutil::KeyOf(t, *rel)); });
  EXPECT_EQ(got, expected);
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadGen a(77), b(77);
  ColumnData ca = a.Generate({500, 30, 0.4});
  ColumnData cb = b.Generate({500, 30, 0.4});
  EXPECT_EQ(ca.values, cb.values);
}

}  // namespace
}  // namespace mmdb
