// The Section 3.3.1 relation generator: cardinality, duplicate percentage,
// truncated-normal duplicate distributions (Graph 3), semijoin selectivity.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace mmdb {
namespace {

TEST(WorkloadTest, CardinalityHonored) {
  WorkloadGen gen(1);
  for (size_t n : {1u, 10u, 1000u}) {
    ColumnData col = gen.Generate({n, 0, 0.8});
    EXPECT_EQ(col.values.size(), n);
    EXPECT_EQ(col.uniques.size(), n);  // 0% duplicates
  }
}

TEST(WorkloadTest, ZeroCardinality) {
  WorkloadGen gen(1);
  ColumnData col = gen.Generate({0, 0, 0.8});
  EXPECT_TRUE(col.values.empty());
}

TEST(WorkloadTest, DuplicatePercentageControlsUniqueCount) {
  WorkloadGen gen(2);
  ColumnData col = gen.Generate({1000, 40, 0.8});
  EXPECT_EQ(col.values.size(), 1000u);
  EXPECT_EQ(col.uniques.size(), 600u);  // 1000 * (1 - 0.4)
  // Counts sum to the cardinality, each >= 1.
  int64_t total = 0;
  for (int32_t c : col.counts) {
    EXPECT_GE(c, 1);
    total += c;
  }
  EXPECT_EQ(total, 1000);
}

TEST(WorkloadTest, HundredPercentDuplicatesIsOneValue) {
  WorkloadGen gen(3);
  ColumnData col = gen.Generate({500, 100, 0.1});
  EXPECT_EQ(col.uniques.size(), 1u);
  EXPECT_EQ(col.values.size(), 500u);
  for (int32_t v : col.values) EXPECT_EQ(v, col.uniques[0]);
}

TEST(WorkloadTest, UniquesAreDistinctAcrossCalls) {
  WorkloadGen gen(4);
  ColumnData a = gen.Generate({500, 0, 0.8});
  ColumnData b = gen.Generate({500, 0, 0.8});
  std::set<int32_t> all(a.uniques.begin(), a.uniques.end());
  for (int32_t v : b.uniques) {
    EXPECT_TRUE(all.insert(v).second) << "value reused across relations";
  }
}

TEST(WorkloadTest, SkewedDistributionConcentratesMass) {
  // Graph 3: with sigma 0.1, the top 10% of values hold far more tuples
  // than with sigma 0.8.
  WorkloadGen gen(5);
  ColumnData skewed = gen.Generate({20000, 90, 0.1});
  ColumnData uniform = gen.Generate({20000, 90, 0.8});
  auto top10_share = [](const ColumnData& col) {
    std::vector<int32_t> counts = col.counts;
    std::sort(counts.begin(), counts.end(), std::greater<int32_t>());
    int64_t top = 0, total = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      if (i < counts.size() / 10) top += counts[i];
    }
    return static_cast<double>(top) / total;
  };
  EXPECT_GT(top10_share(skewed), top10_share(uniform) + 0.1);
}

TEST(WorkloadTest, DistributionCurveShape) {
  WorkloadGen gen(6);
  ColumnData skewed = gen.Generate({20000, 90, 0.1});
  std::vector<double> curve = WorkloadGen::DistributionCurve(skewed, 10);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front(), 0.0);
  EXPECT_NEAR(curve.back(), 100.0, 1e-9);
  // Monotone nondecreasing and concave-ish (descending counts).
  for (size_t i = 1; i < curve.size(); ++i) EXPECT_GE(curve[i], curve[i - 1]);
  // Skew: half the values already cover most of the tuples.
  EXPECT_GT(curve[5], 75.0);
}

TEST(WorkloadTest, SemijoinSelectivityControlsMatches) {
  WorkloadGen gen(7);
  ColumnData big = gen.Generate({2000, 0, 0.8});
  for (double pct : {0.0, 25.0, 100.0}) {
    ColumnData small = gen.GenerateMatching({1000, 0, 0.8}, big.uniques, pct);
    std::set<int32_t> big_set(big.uniques.begin(), big.uniques.end());
    size_t matching = 0;
    for (int32_t v : small.uniques) {
      if (big_set.contains(v)) ++matching;
    }
    EXPECT_NEAR(static_cast<double>(matching) / small.uniques.size(),
                pct / 100.0, 0.01);
  }
}

TEST(WorkloadTest, MatchingValuesAreSampledWithoutReplacement) {
  WorkloadGen gen(8);
  ColumnData big = gen.Generate({100, 0, 0.8});
  ColumnData small = gen.GenerateMatching({100, 0, 0.8}, big.uniques, 100.0);
  std::set<int32_t> s(small.uniques.begin(), small.uniques.end());
  EXPECT_EQ(s.size(), small.uniques.size());  // all distinct
}

TEST(WorkloadTest, BuildRelationMatchesColumn) {
  WorkloadGen gen(9);
  ColumnData col = gen.Generate({300, 50, 0.4});
  auto rel = WorkloadGen::BuildRelation("r", col);
  EXPECT_EQ(rel->cardinality(), 300u);
  ASSERT_NE(rel->primary_index(), nullptr);
  EXPECT_EQ(rel->primary_index()->size(), 300u);
  // Primary index is the array index used to scan relations in the paper.
  EXPECT_EQ(rel->primary_index()->kind(), IndexKind::kArray);
  std::multiset<int32_t> expected(col.values.begin(), col.values.end());
  std::multiset<int32_t> got;
  rel->ForEachTuple([&](TupleRef t) { got.insert(testutil::KeyOf(t, *rel)); });
  EXPECT_EQ(got, expected);
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadGen a(77), b(77);
  ColumnData ca = a.Generate({500, 30, 0.4});
  ColumnData cb = b.Generate({500, 30, 0.4});
  EXPECT_EQ(ca.values, cb.values);
}

TEST(ZipfTest, RanksInRange) {
  Rng rng(1);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t r = zipf.Next(&rng);
    EXPECT_LT(r, 1000u);
  }
}

TEST(ZipfTest, SkewOrdersRankFrequencies) {
  // Under theta=0.99 rank 0 must dominate rank 10 which dominates rank 100.
  Rng rng(2);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> freq(1000, 0);
  for (int i = 0; i < 200000; ++i) freq[zipf.Next(&rng)]++;
  EXPECT_GT(freq[0], freq[10]);
  EXPECT_GT(freq[10], freq[100]);
  // YCSB-style skew: the hottest 10 ranks draw a large share of the mass.
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += freq[i];
  EXPECT_GT(top10, 200000 / 4);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(3);
  ZipfGenerator zipf(100, 0.0);
  std::vector<int> freq(100, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) freq[zipf.Next(&rng)]++;
  // Every rank within 3x of the expected uniform count.
  for (int f : freq) {
    EXPECT_GT(f, draws / 100 / 3);
    EXPECT_LT(f, draws / 100 * 3);
  }
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(4);
  ZipfGenerator zipf(1, 0.99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}

TEST(OpMixTest, RatiosConverge) {
  MixSpec spec;
  spec.key_domain = 10000;
  spec.read_pct = 90.0;
  spec.point_pct = 75.0;
  spec.insert_pct = 50.0;
  OpMixGenerator gen(spec, 11);
  int reads = 0, points = 0, scans = 0, inserts = 0, updates = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const MixedOp op = gen.Next();
    switch (op.kind) {
      case MixedOp::Kind::kPointRead: ++reads; ++points; break;
      case MixedOp::Kind::kScanRead: ++scans; ++reads; break;
      case MixedOp::Kind::kInsert: ++inserts; break;
      case MixedOp::Kind::kUpdate: ++updates; break;
    }
  }
  EXPECT_NEAR(double(reads) / n, 0.90, 0.01);
  EXPECT_NEAR(double(points) / reads, 0.75, 0.01);
  EXPECT_NEAR(double(inserts) / (inserts + updates), 0.50, 0.02);
  EXPECT_GT(scans, 0);
}

TEST(OpMixTest, KeysInDomainAndScansBounded) {
  MixSpec spec;
  spec.key_domain = 5000;
  spec.scan_width = 64;
  OpMixGenerator gen(spec, 12);
  for (int i = 0; i < 20000; ++i) {
    const MixedOp op = gen.Next();
    EXPECT_GE(op.key, 0);
    EXPECT_LT(op.key, 5000);
    if (op.kind == MixedOp::Kind::kScanRead) {
      EXPECT_EQ(op.key_hi, op.key + 64);
    }
    EXPECT_LT(op.template_id, 1u);  // default templates=1
  }
}

TEST(OpMixTest, SkewConcentratesKeys) {
  // A 0.99-theta mix must revisit its hottest key far more often than a
  // uniform mix over the same domain — that repetition is what makes the
  // reuse cache pay off.
  auto hottest_share = [](double theta) {
    MixSpec spec;
    spec.key_domain = 10000;
    spec.zipf_theta = theta;
    OpMixGenerator gen(spec, 13);
    std::map<int64_t, int> freq;
    for (int i = 0; i < 50000; ++i) freq[gen.Next().key]++;
    int hottest = 0;
    for (const auto& [k, f] : freq) hottest = std::max(hottest, f);
    return double(hottest) / 50000;
  };
  EXPECT_GT(hottest_share(0.99), 10 * hottest_share(0.0));
}

TEST(OpMixTest, TemplatesRotate) {
  MixSpec spec;
  spec.templates = 4;
  OpMixGenerator gen(spec, 14);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.Next().template_id);
  EXPECT_EQ(seen.size(), 4u);
  for (uint32_t t : seen) EXPECT_LT(t, 4u);
}

TEST(OpMixTest, DeterministicForSeed) {
  MixSpec spec;
  spec.read_pct = 80.0;
  OpMixGenerator a(spec, 99), b(spec, 99);
  for (int i = 0; i < 1000; ++i) {
    const MixedOp x = a.Next(), y = b.Next();
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.key_hi, y.key_hi);
    EXPECT_EQ(x.template_id, y.template_id);
  }
}

}  // namespace
}  // namespace mmdb
