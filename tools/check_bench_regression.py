#!/usr/bin/env python3
"""Perf-smoke gate: batched execution must not regress vs the committed
baseline.

Absolute times are machine-dependent (CI runners vary wildly), so the gate
compares a machine-independent quantity: the speedup ratio

    tuple_time / batched_time

per (benchmark, sweep point), for the two mode-sensitive join algorithms:

    method 0 = HashJoin   (default exec mode: batched)   vs method 4 = tuple
    method 2 = SortMerge  (default exec mode: batched)   vs method 5 = tuple

If the current run's speedup drops more than --tolerance (default 10%)
below the baseline's speedup at the same sweep point, the batched path has
regressed relative to the scalar path on the same hardware and the check
fails.  Sweep points present in only one file are ignored (so the filter
used in CI may be a subset of the baseline sweep).

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.10]
"""

import argparse
import json
import re
import sys

# method-id pairs: (batched-by-default, tuple-pinned)
MODE_PAIRS = [("0", "4"), ("2", "5")]


def load_times(path):
    """name -> cpu_time.

    Prefers the `_median` aggregate (present when the bench ran with
    --benchmark_repetitions) over single-iteration entries — medians are
    what make the 10% gate stable on noisy CI runners.
    """
    with open(path) as f:
        data = json.load(f)
    times = {}
    medians = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") == "aggregate":
            if b.get("aggregate_name") == "median":
                name = b["name"]
                if name.endswith("_median"):
                    name = name[: -len("_median")]
                medians[name] = float(b["cpu_time"])
        else:
            times[b["name"]] = float(b["cpu_time"])
    times.update(medians)
    return times


def speedups(times):
    """(bench_base, param) -> tuple_time / batched_time."""
    out = {}
    for name, t_batched in times.items():
        m = re.match(r"^(.*)/(\d+)/(\d+)$", name)
        if not m:
            continue
        base, method, param = m.groups()
        for batched_id, tuple_id in MODE_PAIRS:
            if method != batched_id:
                continue
            tuple_name = f"{base}/{tuple_id}/{param}"
            if tuple_name in times and t_batched > 0:
                out[(base, batched_id, param)] = times[tuple_name] / t_batched
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative drop in batched speedup")
    args = ap.parse_args()

    base = speedups(load_times(args.baseline))
    curr = speedups(load_times(args.current))
    shared = sorted(set(base) & set(curr))
    if not shared:
        print("error: no comparable (benchmark, sweep point) pairs between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        return 2

    failures = []
    for key in shared:
        bench, method, param = key
        b, c = base[key], curr[key]
        drop = (b - c) / b
        status = "FAIL" if drop > args.tolerance else "ok"
        print(f"{status:4} {bench} method={method} param={param}  "
              f"baseline speedup={b:.2f}x  current={c:.2f}x  "
              f"drop={drop * 100:+.1f}%")
        if drop > args.tolerance:
            failures.append(key)

    if failures:
        print(f"\n{len(failures)}/{len(shared)} points regressed more than "
              f"{args.tolerance * 100:.0f}% vs baseline", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} points within "
          f"{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
