// mmdb_pitr: point-in-time recovery over a durability directory.
//
// Rebuilds a database from <dir> exactly as of a target LSN: picks the
// newest checkpoint at or below the target and replays WAL records up to
// and including it, stopping cleanly — records past the target are not
// applied.  Without --upto this is ordinary full recovery.
//
//   $ mmdb_pitr /data/mmdb --upto 41234
//   checkpoint+wal recovered to lsn<=41234
//   tuples_loaded: 812  log_records_merged: 96  log_records_dropped: 3
//   table emp: 512 rows
//   table dept: 300 rows
//
// The recoverable window is bounded by retention: segments below the GC
// floor (MMDB_WAL_RETAIN_SEGMENTS, replica acks) are gone, so targets
// older than the oldest retained checkpoint fail with a typed error.
// Works against a primary's durability dir and a replica's mirror alike.
//
// --verify additionally re-runs recovery a second time and checks both
// runs loaded identical row counts (a cheap determinism smoke test).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/storage/catalog.h"
#include "src/storage/relation.h"
#include "src/txn/recovery.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <durability-dir> [--upto <lsn>] [--verify]\n"
               "  Rebuilds the database state as of <lsn> (default: all of "
               "it)\n  and prints per-table row counts.\n",
               argv0);
  return 2;
}

struct RecoveredState {
  mmdb::RecoveryManager::Progress progress;
  std::vector<std::pair<std::string, size_t>> tables;
};

mmdb::Status RecoverInto(const std::string& dir, uint64_t upto,
                         RecoveredState* out) {
  mmdb::Database db;
  mmdb::Status s = db.Recover(dir, nullptr, &out->progress, upto);
  if (!s.ok()) return s;
  for (const std::string& name : db.catalog().List()) {
    out->tables.emplace_back(name, db.GetTable(name)->cardinality());
  }
  return mmdb::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string dir = argv[1];
  uint64_t upto = UINT64_MAX;
  bool verify = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--upto") == 0 && i + 1 < argc) {
      char* end = nullptr;
      upto = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      return Usage(argv[0]);
    }
  }

  RecoveredState state;
  mmdb::Status s = RecoverInto(dir, upto, &state);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  if (upto == UINT64_MAX) {
    std::printf("checkpoint+wal fully recovered\n");
  } else {
    std::printf("checkpoint+wal recovered to lsn<=%llu\n",
                static_cast<unsigned long long>(upto));
  }
  std::printf("tuples_loaded: %zu  log_records_merged: %zu  "
              "log_records_dropped: %zu\n",
              state.progress.tuples_loaded, state.progress.log_records_merged,
              state.progress.log_records_dropped);
  for (const auto& [name, rows] : state.tables) {
    std::printf("table %s: %zu rows\n", name.c_str(), rows);
  }

  if (verify) {
    RecoveredState again;
    s = RecoverInto(dir, upto, &again);
    if (!s.ok()) {
      std::fprintf(stderr, "error: verify pass failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (again.tables != state.tables) {
      std::fprintf(stderr, "error: verify pass loaded different state\n");
      return 1;
    }
    std::printf("verify: second recovery matches\n");
  }
  return 0;
}
